"""Declarative factorial scenario matrices and their deterministic cells.

A :class:`ScenarioMatrix` is the pre-registered experimental design of a
sweep: the full factorial product of governors x workloads (apps or
multi-app sessions) x platforms x replication seeds, optionally narrowed by
per-governor parameters and simulation-config overrides.  Expanding the
matrix yields one :class:`ScenarioCell` per combination, in a deterministic
order, each with stable derived seeds and a content fingerprint.

Seeding scheme
--------------
Every cell derives three independent 31-bit seeds from a SHA-256 hash of its
coordinates (never from Python's process-randomised ``hash``):

* ``trace_seed``   <- (base_seed, workload, platform, seed): the demand trace
  is *governor-independent*, so every governor in the same (workload,
  platform, seed) row faces bit-identical user behaviour -- the paper's
  "similar session" fairness requirement.
* ``sim_seed``     <- same coordinates: sensor noise is likewise shared
  across governors within a row.
* ``governor_seed``<- additionally includes the governor name, so stochastic
  policies (the Next agent's exploration) are decoupled between columns.

Because the derivation is pure hashing, any cell can be reconstructed and
re-run in any process and produce the same result, which is what makes the
on-disk result cache and cross-process replication trustworthy.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.config import SimulationConfig
from repro.sim.experiment import GOVERNOR_FACTORIES
from repro.soc.platform import PLATFORM_LIBRARY
from repro.workloads.apps import APP_LIBRARY
from repro.workloads.session import NAMED_SESSIONS, Session, session_matrix

#: Bumped whenever cell execution semantics change, so stale cache entries
#: from older schemes can never be mistaken for current results.
SCHEMA_VERSION = 1

_SEED_MODULUS = 2**31


def derive_seed(*parts: Any) -> int:
    """Derive a stable 31-bit seed from arbitrary coordinate parts.

    Uses SHA-256 over the stringified parts so the value is identical across
    processes, interpreter runs and machines (unlike built-in ``hash``).
    """
    text = "\x1f".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_MODULUS


@dataclass(frozen=True)
class WorkloadSpec:
    """One value of the apps/sessions axis: a named sequence of app segments."""

    key: str
    segments: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a workload spec needs a non-empty key")
        if not self.segments:
            raise ValueError(f"workload {self.key!r} needs at least one segment")
        for app_name, duration_s in self.segments:
            if app_name not in APP_LIBRARY:
                raise ValueError(f"workload {self.key!r}: unknown app {app_name!r}")
            if duration_s <= 0:
                raise ValueError(f"workload {self.key!r}: duration must be positive")

    @property
    def duration_s(self) -> float:
        """Total session duration across all segments."""
        return sum(duration for _, duration in self.segments)

    @classmethod
    def single_app(cls, app_name: str, duration_s: float) -> "WorkloadSpec":
        """A one-segment workload named after its app."""
        return cls(key=app_name, segments=((app_name, float(duration_s)),))

    @classmethod
    def from_session(cls, key: str, session: Session) -> "WorkloadSpec":
        """Wrap a :class:`~repro.workloads.session.Session` under ``key``."""
        return cls(
            key=key,
            segments=tuple(
                (segment.app_name, float(segment.duration_s))
                for segment in session.segments
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {"key": self.key, "segments": [list(pair) for pair in self.segments]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            key=data["key"],
            segments=tuple((app, float(dur)) for app, dur in data["segments"]),
        )


def _freeze_mapping(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioCell:
    """One pre-registered point of the factorial design.

    Cells are plain, hashable, picklable data: they can be shipped to a
    worker process, serialised into the result cache and reconstructed from
    their :meth:`spec` without loss.
    """

    matrix_name: str
    governor: str
    workload: WorkloadSpec
    platform: str
    seed: int
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    governor_params: Tuple[Tuple[str, Any], ...] = ()

    # -- derived seeds -----------------------------------------------------------

    @property
    def trace_seed(self) -> int:
        """Demand-trace seed; governor-independent for fair comparisons."""
        return derive_seed("trace", self.seed, self.workload.key, self.platform)

    @property
    def sim_seed(self) -> int:
        """Engine/sensor-noise seed; governor-independent for fair comparisons."""
        return derive_seed("sim", self.seed, self.workload.key, self.platform)

    @property
    def governor_seed(self) -> int:
        """Seed for stochastic governors; unique per cell."""
        return derive_seed(
            "governor", self.seed, self.workload.key, self.platform, self.governor
        )

    # -- identity ----------------------------------------------------------------

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable description of this cell."""
        return {
            "schema_version": SCHEMA_VERSION,
            "matrix_name": self.matrix_name,
            "governor": self.governor,
            "workload": self.workload.to_dict(),
            "platform": self.platform,
            "seed": self.seed,
            "config_overrides": [list(pair) for pair in self.config_overrides],
            "governor_params": [list(pair) for pair in self.governor_params],
        }

    @classmethod
    def from_spec(cls, data: Mapping[str, Any]) -> "ScenarioCell":
        """Rebuild a cell from :meth:`spec` output."""
        return cls(
            matrix_name=data["matrix_name"],
            governor=data["governor"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            platform=data["platform"],
            seed=int(data["seed"]),
            config_overrides=tuple(
                (key, value) for key, value in data.get("config_overrides", ())
            ),
            governor_params=tuple(
                (key, value) for key, value in data.get("governor_params", ())
            ),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the cell: the result-cache key.

        The matrix name is deliberately excluded so renaming a matrix (or
        running the same cell from two different matrices) still hits the
        cache; everything that affects the simulation outcome is included.
        """
        payload = self.spec()
        payload.pop("matrix_name")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        return f"{self.governor}/{self.workload.key}/{self.platform}/s{self.seed}"


@dataclass(frozen=True)
class ScenarioMatrix:
    """A declarative factorial experiment: axes and their full product.

    Attributes
    ----------
    name:
        Matrix name (used in progress output and cell metadata).
    governors:
        Governor registry names (columns of the comparison tables).
    workloads:
        Apps/sessions axis values.
    platforms:
        Platform registry names.
    seeds:
        Replication seeds; every (governor, workload, platform) combination
        is replicated once per seed.
    config_overrides:
        Extra :class:`~repro.sim.config.SimulationConfig` keyword arguments
        applied to every cell (e.g. ``warm_start_temperature_c``).
    governor_params:
        Per-governor constructor keyword arguments, keyed by governor name.
    """

    name: str
    governors: Tuple[str, ...]
    workloads: Tuple[WorkloadSpec, ...]
    platforms: Tuple[str, ...] = ("exynos9810",)
    seeds: Tuple[int, ...] = (0,)
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    governor_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a matrix needs a name")
        for axis, values in (
            ("governors", self.governors),
            ("workloads", self.workloads),
            ("platforms", self.platforms),
            ("seeds", self.seeds),
        ):
            if not values:
                raise ValueError(f"axis {axis!r} must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} contains duplicate values")
        for governor in self.governors:
            if governor not in GOVERNOR_FACTORIES:
                raise ValueError(
                    f"unknown governor {governor!r}; available: "
                    f"{sorted(GOVERNOR_FACTORIES)}"
                )
        for platform in self.platforms:
            if platform not in PLATFORM_LIBRARY:
                raise ValueError(
                    f"unknown platform {platform!r}; available: "
                    f"{sorted(PLATFORM_LIBRARY)}"
                )
        keys = [workload.key for workload in self.workloads]
        if len(set(keys)) != len(keys):
            raise ValueError("workload keys must be unique")
        reserved = {"refresh_hz", "duration_s", "seed"}
        allowed = set(SimulationConfig.__dataclass_fields__) - reserved
        for key, _ in self.config_overrides:
            if key in reserved:
                raise ValueError(
                    f"config override {key!r} is reserved: refresh_hz comes from the "
                    "platform, duration_s from the workload and seed from the cell"
                )
            if key not in allowed:
                raise ValueError(
                    f"unknown config override {key!r}; available: {sorted(allowed)}"
                )
        for governor, _ in self.governor_params:
            if governor not in self.governors:
                raise ValueError(
                    f"governor_params given for {governor!r}, which is not on the "
                    "governors axis"
                )

    def __len__(self) -> int:
        return (
            len(self.governors)
            * len(self.workloads)
            * len(self.platforms)
            * len(self.seeds)
        )

    def params_for(self, governor: str) -> Tuple[Tuple[str, Any], ...]:
        """Constructor kwargs registered for ``governor`` (possibly empty)."""
        for name, params in self.governor_params:
            if name == governor:
                return params
        return ()

    def cells(self) -> List[ScenarioCell]:
        """Expand the full factorial product, in pre-registered order.

        The order is workload-major, then platform, seed and governor, so all
        columns of one comparison row are adjacent -- convenient both for
        progress output and for cache-locality of paired baselines.
        """
        expanded: List[ScenarioCell] = []
        for workload in self.workloads:
            for platform in self.platforms:
                for seed in self.seeds:
                    for governor in self.governors:
                        expanded.append(
                            ScenarioCell(
                                matrix_name=self.name,
                                governor=governor,
                                workload=workload,
                                platform=platform,
                                seed=seed,
                                config_overrides=self.config_overrides,
                                governor_params=self.params_for(governor),
                            )
                        )
        return expanded

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        governors: Sequence[str],
        apps: Sequence[str] = (),
        sessions: Optional[Mapping[str, Session]] = None,
        platforms: Sequence[str] = ("exynos9810",),
        seeds: Sequence[int] = (0,),
        duration_s: float = 90.0,
        game_duration_s: Optional[float] = None,
        config_overrides: Optional[Mapping[str, Any]] = None,
        governor_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    ) -> "ScenarioMatrix":
        """Convenience constructor from app names and/or named sessions."""
        workloads: List[WorkloadSpec] = []
        if apps:
            for key, session in session_matrix(
                apps, duration_s=duration_s, game_duration_s=game_duration_s
            ).items():
                workloads.append(WorkloadSpec.from_session(key, session))
        for key, session in (sessions or {}).items():
            workloads.append(WorkloadSpec.from_session(key, session))
        return cls(
            name=name,
            governors=tuple(governors),
            workloads=tuple(workloads),
            platforms=tuple(platforms),
            seeds=tuple(int(seed) for seed in seeds),
            config_overrides=_freeze_mapping(config_overrides),
            governor_params=tuple(
                sorted(
                    (governor, _freeze_mapping(params))
                    for governor, params in (governor_params or {}).items()
                )
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON/YAML-serialisable description of the matrix."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "governors": list(self.governors),
            "workloads": [workload.to_dict() for workload in self.workloads],
            "platforms": list(self.platforms),
            "seeds": list(self.seeds),
            "config_overrides": dict(self.config_overrides),
            "governor_params": {
                governor: dict(params) for governor, params in self.governor_params
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioMatrix":
        """Build a matrix from a plain-dict description (YAML/JSON sweeps).

        Workload entries may be either a bare app name (expanded to a single
        segment of ``duration_s``, games getting ``game_duration_s``, or of a
        named session from :data:`~repro.workloads.session.NAMED_SESSIONS`),
        or an explicit ``{"key": ..., "segments": [[app, duration], ...]}``
        mapping.  Unknown top-level keys are rejected so a typo'd spec cannot
        silently run a different experiment than its author pre-registered.
        """
        known_keys = {
            "schema_version", "name", "governors", "workloads", "platforms",
            "seeds", "duration_s", "game_duration_s", "config_overrides",
            "governor_params",
        }
        unknown = sorted(set(data) - known_keys)
        if unknown:
            raise ValueError(
                f"unknown matrix key(s) {unknown}; available: {sorted(known_keys)}"
            )
        duration_s = float(data.get("duration_s", 90.0))
        game_duration_s = float(data.get("game_duration_s", duration_s))
        workloads: List[WorkloadSpec] = []
        for entry in data.get("workloads", ()):
            if isinstance(entry, str):
                if entry in NAMED_SESSIONS:
                    workloads.append(
                        WorkloadSpec.from_session(entry, NAMED_SESSIONS[entry])
                    )
                else:
                    # session_matrix owns the games-run-longer rule.
                    session = session_matrix(
                        [entry], duration_s=duration_s, game_duration_s=game_duration_s
                    )[entry]
                    workloads.append(WorkloadSpec.from_session(entry, session))
            else:
                workloads.append(WorkloadSpec.from_dict(entry))
        return cls(
            name=data.get("name", "unnamed"),
            governors=tuple(data.get("governors", ())),
            workloads=tuple(workloads),
            platforms=tuple(data.get("platforms", ("exynos9810",))),
            seeds=tuple(int(seed) for seed in data.get("seeds", (0,))),
            config_overrides=_freeze_mapping(data.get("config_overrides")),
            governor_params=tuple(
                sorted(
                    (governor, _freeze_mapping(params))
                    for governor, params in dict(data.get("governor_params", {})).items()
                )
            ),
        )

    @classmethod
    def from_file(cls, path: str) -> "ScenarioMatrix":
        """Load a matrix description from a ``.json``, ``.yaml`` or ``.yml`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError:  # pragma: no cover - depends on environment
                raise RuntimeError(
                    "PyYAML is not installed; use a .json matrix description instead"
                ) from None
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(f"invalid YAML in {path}: {exc}") from None
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON in {path}: {exc}") from None
        return cls.from_dict(data)


# ----------------------------------------------------------------------------------
# Named matrices
# ----------------------------------------------------------------------------------

def _smoke_matrix() -> ScenarioMatrix:
    """2 governors x 2 apps x 2 seeds, a few seconds per cell: CI smoke sweep."""
    return ScenarioMatrix.build(
        name="smoke",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=6.0,
    )


def _baselines_matrix() -> ScenarioMatrix:
    """Every non-learning governor across the six paper apps, 3 replications."""
    return ScenarioMatrix.build(
        name="baselines",
        governors=("schedutil", "performance", "powersave", "conservative"),
        apps=("facebook", "lineage", "pubg", "spotify", "web_browser", "youtube"),
        seeds=(0, 1, 2),
        duration_s=90.0,
        game_duration_s=120.0,
    )


def _platforms_matrix() -> ScenarioMatrix:
    """Cross-platform sweep in the spirit of SysScale's multi-domain study."""
    return ScenarioMatrix.build(
        name="platforms",
        governors=("schedutil", "powersave", "conservative"),
        apps=("facebook", "lineage", "youtube"),
        platforms=("exynos9810", "generic-two-cluster"),
        seeds=(0, 1),
        duration_s=60.0,
    )


#: Registry of predefined matrices, keyed by the name accepted by the
#: ``repro-sweep`` CLI.
NAMED_MATRICES = {
    "smoke": _smoke_matrix,
    "baselines": _baselines_matrix,
    "platforms": _platforms_matrix,
}


def named_matrix(name: str) -> ScenarioMatrix:
    """Instantiate a predefined matrix from :data:`NAMED_MATRICES` by name."""
    try:
        factory = NAMED_MATRICES[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; available: {sorted(NAMED_MATRICES)}"
        ) from None
    return factory()
