"""Declarative factorial scenario matrices and their deterministic cells.

A :class:`ScenarioMatrix` is the pre-registered experimental design of a
sweep: the full factorial product of governors x workloads (apps or
multi-app sessions) x platforms x replication seeds, optionally narrowed by
per-governor parameters and simulation-config overrides.  Expanding the
matrix yields one :class:`ScenarioCell` per combination, in a deterministic
order, each with stable derived seeds and a content fingerprint.

Seeding scheme
--------------
Every cell derives three independent 31-bit seeds from a SHA-256 hash of its
coordinates (never from Python's process-randomised ``hash``):

* ``trace_seed``   <- (base_seed, workload, platform, seed): the demand trace
  is *governor-independent*, so every governor in the same (workload,
  platform, seed) row faces bit-identical user behaviour -- the paper's
  "similar session" fairness requirement.
* ``sim_seed``     <- same coordinates: sensor noise is likewise shared
  across governors within a row.
* ``governor_seed``<- additionally includes the governor name, so stochastic
  policies (the Next agent's exploration) are decoupled between columns.

Because the derivation is pure hashing, any cell can be reconstructed and
re-run in any process and produce the same result, which is what makes the
on-disk result cache and cross-process replication trustworthy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.artifact import TrainingSpec
from repro.core.federated import FleetSpec
from repro.core.seeding import canonical_fingerprint, derive_seed
from repro.sim.config import SimulationConfig
from repro.sim.experiment import GOVERNOR_FACTORIES, TRAINABLE_GOVERNORS
from repro.soc.platform import PLATFORM_LIBRARY
from repro.workloads.apps import APP_LIBRARY
from repro.workloads.session import NAMED_SESSIONS, Session, session_matrix

__all__ = [
    "COLD_TRAINING",
    "NAMED_MATRICES",
    "SCHEMA_VERSION",
    "ScenarioCell",
    "ScenarioMatrix",
    "TrainingVariant",
    "WorkloadSpec",
    "derive_seed",  # canonical home: repro.core.seeding; re-exported for compat
    "named_matrix",
]

#: Bumped whenever cell execution semantics change, so stale cache entries
#: from older schemes can never be mistaken for current results.  Version 2
#: added the training axis to every cell spec.  (The federated training mode
#: did not bump it: cold and pretrained cells execute exactly as before, so
#: their cached results remain valid.)
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class WorkloadSpec:
    """One value of the apps/sessions axis: a named sequence of app segments."""

    key: str
    segments: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a workload spec needs a non-empty key")
        if not self.segments:
            raise ValueError(f"workload {self.key!r} needs at least one segment")
        for app_name, duration_s in self.segments:
            if app_name not in APP_LIBRARY:
                raise ValueError(f"workload {self.key!r}: unknown app {app_name!r}")
            if duration_s <= 0:
                raise ValueError(f"workload {self.key!r}: duration must be positive")

    @property
    def duration_s(self) -> float:
        """Total session duration across all segments."""
        return sum(duration for _, duration in self.segments)

    @classmethod
    def single_app(cls, app_name: str, duration_s: float) -> "WorkloadSpec":
        """A one-segment workload named after its app."""
        return cls(key=app_name, segments=((app_name, float(duration_s)),))

    @classmethod
    def from_session(cls, key: str, session: Session) -> "WorkloadSpec":
        """Wrap a :class:`~repro.workloads.session.Session` under ``key``."""
        return cls(
            key=key,
            segments=tuple(
                (segment.app_name, float(segment.duration_s))
                for segment in session.segments
            ),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form."""
        return {"key": self.key, "segments": [list(pair) for pair in self.segments]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            key=data["key"],
            segments=tuple((app, float(dur)) for app, dur in data["segments"]),
        )


@dataclass(frozen=True)
class TrainingVariant:
    """One value of the training axis: how learning governors enter a cell.

    ``cold`` (the default, and the only pre-existing behaviour) instantiates
    the learning governor untrained with exploration on.  ``pretrained``
    trains it first -- via the artifact pipeline, once per distinct
    :class:`~repro.core.artifact.TrainingSpec` -- and evaluates the frozen
    greedy policy, the paper's "fully trained" protocol.  ``federated``
    trains a whole device fleet -- ``devices`` virtual devices over
    ``rounds`` federated rounds, merged per round through
    :class:`~repro.core.federated.FederatedAggregator` -- and evaluates the
    merged fleet agent greedily (Section IV-C's cloud-assisted variant).
    Non-trainable governors (schedutil & co.) are unaffected by the axis:
    their cells are emitted once, under the design's cold variant.

    Attributes
    ----------
    key:
        Axis value name (used in cell labels, tables and aggregation).
    mode:
        ``"cold"``, ``"pretrained"`` or ``"federated"``.
    apps:
        Applications to train on; empty means "the apps of the cell's own
        workload, in order of first appearance".  Pinning an explicit list
        lets many workloads share one artifact.
    episodes / episode_duration_s / seed:
        Training budget and base seed of the artifact's
        :class:`~repro.core.artifact.TrainingSpec` (for ``federated``: the
        per-device, per-round budget and the fleet seed of its
        :class:`~repro.core.federated.FleetSpec`).  The seed is deliberately
        independent of the cell's replication seed so that replications
        evaluate the *same* trained policy rather than retraining per seed.
    devices / rounds:
        Fleet size and federated round count (``federated`` mode only).
    device_intensities:
        Optional per-device interaction-intensity weights (``federated`` mode
        only).  Empty -- the default -- keeps the fleet IID.  When set, one
        positive float per device scales that device's episode budget through
        :meth:`FleetSpec.device_episodes <repro.core.federated.FleetSpec.device_episodes>`,
        modelling heavy and light users contributing unequal experience to
        the merge (a non-IID fleet).
    """

    key: str = "cold"
    mode: str = "cold"
    apps: Tuple[str, ...] = ()
    episodes: int = 6
    episode_duration_s: float = 60.0
    seed: int = 0
    devices: int = 4
    rounds: int = 2
    device_intensities: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("a training variant needs a non-empty key")
        if self.mode not in ("cold", "pretrained", "federated"):
            raise ValueError(
                f"unknown training mode {self.mode!r}; available: cold, "
                "pretrained, federated"
            )
        if self.episodes < 1:
            raise ValueError("episodes must be at least 1")
        if self.episode_duration_s <= 0:
            raise ValueError("episode_duration_s must be positive")
        if self.devices < 1:
            raise ValueError("devices must be at least 1")
        if self.rounds < 1:
            raise ValueError("rounds must be at least 1")
        if self.device_intensities:
            if len(self.device_intensities) != self.devices:
                raise ValueError(
                    "device_intensities needs one weight per device "
                    f"({len(self.device_intensities)} given for {self.devices} devices)"
                )
            if any(not weight > 0 for weight in self.device_intensities):
                raise ValueError("device_intensities must all be positive")
        for app_name in self.apps:
            if app_name not in APP_LIBRARY:
                raise ValueError(
                    f"training variant {self.key!r}: unknown app {app_name!r}"
                )

    @property
    def pretrained(self) -> bool:
        """Whether this variant evaluates a single pre-trained (frozen) agent."""
        return self.mode == "pretrained"

    @property
    def federated(self) -> bool:
        """Whether this variant evaluates a federated fleet's merged agent."""
        return self.mode == "federated"

    @property
    def trains(self) -> bool:
        """Whether this variant performs any training before evaluation."""
        return self.mode != "cold"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form.

        ``device_intensities`` is emitted only when set, so pre-existing
        (IID) matrix descriptions round-trip byte-identically.
        """
        data = {
            "key": self.key,
            "mode": self.mode,
            "apps": list(self.apps),
            "episodes": self.episodes,
            "episode_duration_s": self.episode_duration_s,
            "seed": self.seed,
            "devices": self.devices,
            "rounds": self.rounds,
        }
        if self.device_intensities:
            data["device_intensities"] = list(self.device_intensities)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingVariant":
        """Rebuild a variant from a plain-dict description.

        Unknown keys are rejected so a typo'd training spec cannot silently
        pre-register a different experiment.
        """
        known_keys = {
            "key", "mode", "apps", "episodes", "episode_duration_s", "seed",
            "devices", "rounds", "device_intensities",
        }
        unknown = sorted(set(data) - known_keys)
        if unknown:
            raise ValueError(
                f"unknown training key(s) {unknown}; available: {sorted(known_keys)}"
            )
        mode = data.get("mode", "cold")
        return cls(
            key=data.get("key", mode),
            mode=mode,
            apps=tuple(data.get("apps", ())),
            episodes=int(data.get("episodes", 6)),
            episode_duration_s=float(data.get("episode_duration_s", 60.0)),
            seed=int(data.get("seed", 0)),
            devices=int(data.get("devices", 4)),
            rounds=int(data.get("rounds", 2)),
            device_intensities=tuple(
                float(weight) for weight in data.get("device_intensities", ())
            ),
        )


#: The default training axis value: today's cold, exploring agent.
COLD_TRAINING = TrainingVariant()


def _coerce_training(
    training: Optional[Any],
) -> Tuple[TrainingVariant, ...]:
    """Accept ``None`` / one variant / a mapping / sequences thereof."""
    if training is None:
        return (COLD_TRAINING,)
    if isinstance(training, (TrainingVariant, Mapping)):
        training = (training,)
    variants = []
    for entry in training:
        if isinstance(entry, TrainingVariant):
            variants.append(entry)
        else:
            variants.append(TrainingVariant.from_dict(entry))
    return tuple(variants)


def _freeze_mapping(mapping: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    if not mapping:
        return ()
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioCell:
    """One pre-registered point of the factorial design.

    Cells are plain, hashable, picklable data: they can be shipped to a
    worker process, serialised into the result cache and reconstructed from
    their :meth:`spec` without loss.
    """

    matrix_name: str
    governor: str
    workload: WorkloadSpec
    platform: str
    seed: int
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    governor_params: Tuple[Tuple[str, Any], ...] = ()
    training: TrainingVariant = COLD_TRAINING

    # -- derived seeds -----------------------------------------------------------

    @property
    def trace_seed(self) -> int:
        """Demand-trace seed; governor-independent for fair comparisons."""
        return derive_seed("trace", self.seed, self.workload.key, self.platform)

    @property
    def sim_seed(self) -> int:
        """Engine/sensor-noise seed; governor-independent for fair comparisons."""
        return derive_seed("sim", self.seed, self.workload.key, self.platform)

    @property
    def governor_seed(self) -> int:
        """Seed for stochastic governors; unique per cell."""
        return derive_seed(
            "governor", self.seed, self.workload.key, self.platform, self.governor
        )

    # -- identity ----------------------------------------------------------------

    def spec(self) -> Dict[str, Any]:
        """Canonical JSON-serialisable description of this cell."""
        return {
            "schema_version": SCHEMA_VERSION,
            "matrix_name": self.matrix_name,
            "governor": self.governor,
            "workload": self.workload.to_dict(),
            "platform": self.platform,
            "seed": self.seed,
            "config_overrides": [list(pair) for pair in self.config_overrides],
            "governor_params": [list(pair) for pair in self.governor_params],
            "training": self.training.to_dict(),
        }

    @classmethod
    def from_spec(cls, data: Mapping[str, Any]) -> "ScenarioCell":
        """Rebuild a cell from :meth:`spec` output."""
        training = data.get("training")
        return cls(
            matrix_name=data["matrix_name"],
            governor=data["governor"],
            workload=WorkloadSpec.from_dict(data["workload"]),
            platform=data["platform"],
            seed=int(data["seed"]),
            config_overrides=tuple(
                (key, value) for key, value in data.get("config_overrides", ())
            ),
            governor_params=tuple(
                (key, value) for key, value in data.get("governor_params", ())
            ),
            training=(
                COLD_TRAINING if training is None else TrainingVariant.from_dict(training)
            ),
        )

    # -- training ----------------------------------------------------------------

    @property
    def pretrained(self) -> bool:
        """Whether this cell evaluates a pre-trained agent."""
        return self.training.pretrained and self.governor in TRAINABLE_GOVERNORS

    @property
    def federated(self) -> bool:
        """Whether this cell evaluates a federated fleet's merged agent."""
        return self.training.federated and self.governor in TRAINABLE_GOVERNORS

    def _resolved_training_apps(self) -> Tuple[str, ...]:
        """The variant's pinned app list, or the workload's own apps."""
        return self.training.apps or tuple(
            dict.fromkeys(app_name for app_name, _ in self.workload.segments)
        )

    def fleet_spec(self) -> Optional[FleetSpec]:
        """The cell's :class:`FleetSpec`, or ``None`` when not federated.

        Mirrors :meth:`training_spec`: apps default to the cell workload's
        own applications, and the matrix-wide config overrides thread into
        every device's training environment.
        """
        if not self.federated:
            return None
        return FleetSpec(
            apps=self._resolved_training_apps(),
            devices=self.training.devices,
            rounds=self.training.rounds,
            platform=self.platform,
            episodes=self.training.episodes,
            episode_duration_s=self.training.episode_duration_s,
            fleet_seed=self.training.seed,
            config_overrides=self.config_overrides,
            device_intensities=self.training.device_intensities,
        )

    def training_spec(self) -> Optional[TrainingSpec]:
        """The artifact :class:`TrainingSpec` of this cell, or ``None`` when cold.

        When the variant does not pin an explicit app list, the agent is
        trained on the cell workload's own applications in order of first
        appearance -- the per-app Q-table store makes the order irrelevant to
        the policy, but keeping it deterministic keeps the fingerprint (and
        therefore the train-once accounting) stable.
        """
        if not self.pretrained:
            return None
        return TrainingSpec(
            apps=self._resolved_training_apps(),
            platform=self.platform,
            episodes=self.training.episodes,
            episode_duration_s=self.training.episode_duration_s,
            seed=self.training.seed,
            # Train in the same simulated environment the evaluation cell
            # runs in (e.g. warm-start temperature).
            config_overrides=self.config_overrides,
        )

    def canonical_payload(self) -> Dict[str, Any]:
        """The cell's execution-semantic content: the fingerprint hash input.

        The matrix name is deliberately excluded so renaming a matrix (or
        running the same cell from two different matrices) still hits the
        cache, and the training variant is normalised to what actually
        reaches execution: cold cells reduce to ``{"mode": "cold"}`` (the
        variant's display key and unused training budget cannot change the
        run), pretrained cells to their resolved :class:`TrainingSpec` and
        federated cells to their resolved :class:`FleetSpec` (so an explicit
        app list equal to the workload's own apps, or a renamed variant,
        still shares cached results).
        """
        payload = self.spec()
        payload.pop("matrix_name")
        fleet = self.fleet_spec()
        spec = self.training_spec()
        if fleet is not None:
            payload["training"] = {"mode": "federated", "spec": fleet.to_dict()}
        elif spec is not None:
            payload["training"] = {"mode": "pretrained", "spec": spec.to_dict()}
        else:
            payload["training"] = {"mode": "cold"}
        return payload

    def fingerprint(self) -> str:
        """Stable content hash of the cell: the result-cache key.

        Everything that affects the simulation outcome -- and nothing else;
        see :meth:`canonical_payload` -- is included.
        """
        return canonical_fingerprint(self.canonical_payload())

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        label = f"{self.governor}/{self.workload.key}/{self.platform}/s{self.seed}"
        if self.training != COLD_TRAINING:
            label += f"/{self.training.key}"
        return label


@dataclass(frozen=True)
class ScenarioMatrix:
    """A declarative factorial experiment: axes and their full product.

    Attributes
    ----------
    name:
        Matrix name (used in progress output and cell metadata).
    governors:
        Governor registry names (columns of the comparison tables).
    workloads:
        Apps/sessions axis values.
    platforms:
        Platform registry names.
    seeds:
        Replication seeds; every (governor, workload, platform) combination
        is replicated once per seed.
    config_overrides:
        Extra :class:`~repro.sim.config.SimulationConfig` keyword arguments
        applied to every cell (e.g. ``warm_start_temperature_c``).
    governor_params:
        Per-governor constructor keyword arguments, keyed by governor name.
    training:
        Training-axis values (:class:`TrainingVariant`).  Only trainable
        governors expand across this axis; every other governor contributes
        one cell per (workload, platform, seed) under the cold variant.
    """

    name: str
    governors: Tuple[str, ...]
    workloads: Tuple[WorkloadSpec, ...]
    platforms: Tuple[str, ...] = ("exynos9810",)
    seeds: Tuple[int, ...] = (0,)
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    governor_params: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    training: Tuple[TrainingVariant, ...] = (COLD_TRAINING,)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a matrix needs a name")
        for axis, values in (
            ("governors", self.governors),
            ("workloads", self.workloads),
            ("platforms", self.platforms),
            ("seeds", self.seeds),
        ):
            if not values:
                raise ValueError(f"axis {axis!r} must not be empty")
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} contains duplicate values")
        for governor in self.governors:
            if governor not in GOVERNOR_FACTORIES:
                raise ValueError(
                    f"unknown governor {governor!r}; available: "
                    f"{sorted(GOVERNOR_FACTORIES)}"
                )
        for platform in self.platforms:
            if platform not in PLATFORM_LIBRARY:
                raise ValueError(
                    f"unknown platform {platform!r}; available: "
                    f"{sorted(PLATFORM_LIBRARY)}"
                )
        keys = [workload.key for workload in self.workloads]
        if len(set(keys)) != len(keys):
            raise ValueError("workload keys must be unique")
        reserved = {"refresh_hz", "duration_s", "seed"}
        allowed = set(SimulationConfig.__dataclass_fields__) - reserved
        for key, _ in self.config_overrides:
            if key in reserved:
                raise ValueError(
                    f"config override {key!r} is reserved: refresh_hz comes from the "
                    "platform, duration_s from the workload and seed from the cell"
                )
            if key not in allowed:
                raise ValueError(
                    f"unknown config override {key!r}; available: {sorted(allowed)}"
                )
        for governor, _ in self.governor_params:
            if governor not in self.governors:
                raise ValueError(
                    f"governor_params given for {governor!r}, which is not on the "
                    "governors axis"
                )
        if not self.training:
            raise ValueError("axis 'training' must not be empty")
        keys = [variant.key for variant in self.training]
        if len(set(keys)) != len(keys):
            raise ValueError("training variant keys must be unique")
        if any(variant.trains for variant in self.training):
            if not any(g in TRAINABLE_GOVERNORS for g in self.governors):
                raise ValueError(
                    "a pretrained or federated training variant needs a trainable "
                    "governor on the governors axis "
                    f"(trainable: {sorted(TRAINABLE_GOVERNORS)})"
                )
            for governor, params in self.governor_params:
                if governor in TRAINABLE_GOVERNORS and params:
                    raise ValueError(
                        f"governor_params for trainable governor {governor!r} cannot "
                        "be combined with a pretrained or federated training "
                        "variant; the artifact's agent carries its own "
                        "configuration and seed"
                    )
        for variant in self.training:
            if not (variant.trains and variant.apps):
                continue
            # A pinned training-app list that misses a workload app would
            # evaluate an untrained (cold, greedy-on-initial-Q) policy for
            # that app while labelling the cell "pretrained".
            pinned = set(variant.apps)
            for workload in self.workloads:
                missing = sorted(
                    {app for app, _ in workload.segments} - pinned
                )
                if missing:
                    raise ValueError(
                        f"training variant {variant.key!r} pins apps "
                        f"{list(variant.apps)} but workload {workload.key!r} "
                        f"also runs {missing}; pinned training apps must cover "
                        "every workload's apps"
                    )

    def variants_for(self, governor: str) -> Tuple[TrainingVariant, ...]:
        """Training variants ``governor`` expands across.

        Trainable governors cover the whole axis; stateless governors run
        once, under the design's (first) cold variant so their cells keep the
        default-training fingerprint.
        """
        if governor in TRAINABLE_GOVERNORS:
            return self.training
        for variant in self.training:
            if not variant.trains:
                return (variant,)
        return (COLD_TRAINING,)

    def __len__(self) -> int:
        rows = len(self.workloads) * len(self.platforms) * len(self.seeds)
        return rows * sum(
            len(self.variants_for(governor)) for governor in self.governors
        )

    def params_for(self, governor: str) -> Tuple[Tuple[str, Any], ...]:
        """Constructor kwargs registered for ``governor`` (possibly empty)."""
        for name, params in self.governor_params:
            if name == governor:
                return params
        return ()

    def cells(self) -> List[ScenarioCell]:
        """Expand the full factorial product, in pre-registered order.

        The order is workload-major, then platform, seed and governor (each
        governor's training variants adjacent), so all columns of one
        comparison row are adjacent -- convenient both for progress output
        and for cache-locality of paired baselines.
        """
        expanded: List[ScenarioCell] = []
        for workload in self.workloads:
            for platform in self.platforms:
                for seed in self.seeds:
                    for governor in self.governors:
                        for variant in self.variants_for(governor):
                            expanded.append(
                                ScenarioCell(
                                    matrix_name=self.name,
                                    governor=governor,
                                    workload=workload,
                                    platform=platform,
                                    seed=seed,
                                    config_overrides=self.config_overrides,
                                    governor_params=self.params_for(governor),
                                    training=variant,
                                )
                            )
        return expanded

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        governors: Sequence[str],
        apps: Sequence[str] = (),
        sessions: Optional[Mapping[str, Session]] = None,
        platforms: Sequence[str] = ("exynos9810",),
        seeds: Sequence[int] = (0,),
        duration_s: float = 90.0,
        game_duration_s: Optional[float] = None,
        config_overrides: Optional[Mapping[str, Any]] = None,
        governor_params: Optional[Mapping[str, Mapping[str, Any]]] = None,
        training: Optional[Any] = None,
    ) -> "ScenarioMatrix":
        """Convenience constructor from app names and/or named sessions.

        ``training`` accepts a single :class:`TrainingVariant` (or its
        plain-dict form) or a sequence of them; ``None`` keeps the cold-only
        axis.
        """
        workloads: List[WorkloadSpec] = []
        if apps:
            for key, session in session_matrix(
                apps, duration_s=duration_s, game_duration_s=game_duration_s
            ).items():
                workloads.append(WorkloadSpec.from_session(key, session))
        for key, session in (sessions or {}).items():
            workloads.append(WorkloadSpec.from_session(key, session))
        return cls(
            name=name,
            governors=tuple(governors),
            workloads=tuple(workloads),
            platforms=tuple(platforms),
            seeds=tuple(int(seed) for seed in seeds),
            config_overrides=_freeze_mapping(config_overrides),
            governor_params=tuple(
                sorted(
                    (governor, _freeze_mapping(params))
                    for governor, params in (governor_params or {}).items()
                )
            ),
            training=_coerce_training(training),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the whole pre-registered design.

        Hashes the :meth:`to_dict` description (including the matrix name and
        :data:`SCHEMA_VERSION`), so a shard manifest can verify that every
        shard of a distributed sweep was planned, run and merged against one
        identical design -- renaming a matrix or touching any axis changes
        the fingerprint, and a schema bump invalidates old manifests the same
        way it invalidates old cache entries.
        """
        return canonical_fingerprint(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        """JSON/YAML-serialisable description of the matrix."""
        return {
            "schema_version": SCHEMA_VERSION,
            "name": self.name,
            "governors": list(self.governors),
            "workloads": [workload.to_dict() for workload in self.workloads],
            "platforms": list(self.platforms),
            "seeds": list(self.seeds),
            "config_overrides": dict(self.config_overrides),
            "governor_params": {
                governor: dict(params) for governor, params in self.governor_params
            },
            "training": [variant.to_dict() for variant in self.training],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioMatrix":
        """Build a matrix from a plain-dict description (YAML/JSON sweeps).

        Workload entries may be either a bare app name (expanded to a single
        segment of ``duration_s``, games getting ``game_duration_s``, or of a
        named session from :data:`~repro.workloads.session.NAMED_SESSIONS`),
        or an explicit ``{"key": ..., "segments": [[app, duration], ...]}``
        mapping.  Unknown top-level keys are rejected so a typo'd spec cannot
        silently run a different experiment than its author pre-registered.
        """
        known_keys = {
            "schema_version", "name", "governors", "workloads", "platforms",
            "seeds", "duration_s", "game_duration_s", "config_overrides",
            "governor_params", "training",
        }
        unknown = sorted(set(data) - known_keys)
        if unknown:
            raise ValueError(
                f"unknown matrix key(s) {unknown}; available: {sorted(known_keys)}"
            )
        duration_s = float(data.get("duration_s", 90.0))
        game_duration_s = float(data.get("game_duration_s", duration_s))
        workloads: List[WorkloadSpec] = []
        for entry in data.get("workloads", ()):
            if isinstance(entry, str):
                if entry in NAMED_SESSIONS:
                    workloads.append(
                        WorkloadSpec.from_session(entry, NAMED_SESSIONS[entry])
                    )
                else:
                    # session_matrix owns the games-run-longer rule.
                    session = session_matrix(
                        [entry], duration_s=duration_s, game_duration_s=game_duration_s
                    )[entry]
                    workloads.append(WorkloadSpec.from_session(entry, session))
            else:
                workloads.append(WorkloadSpec.from_dict(entry))
        return cls(
            name=data.get("name", "unnamed"),
            governors=tuple(data.get("governors", ())),
            workloads=tuple(workloads),
            platforms=tuple(data.get("platforms", ("exynos9810",))),
            seeds=tuple(int(seed) for seed in data.get("seeds", (0,))),
            config_overrides=_freeze_mapping(data.get("config_overrides")),
            governor_params=tuple(
                sorted(
                    (governor, _freeze_mapping(params))
                    for governor, params in dict(data.get("governor_params", {})).items()
                )
            ),
            training=_coerce_training(data.get("training")),
        )

    @classmethod
    def from_file(cls, path: str) -> "ScenarioMatrix":
        """Load a matrix description from a ``.json``, ``.yaml`` or ``.yml`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        if path.endswith((".yaml", ".yml")):
            try:
                import yaml
            except ImportError:  # pragma: no cover - depends on environment
                raise RuntimeError(
                    "PyYAML is not installed; use a .json matrix description instead"
                ) from None
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(f"invalid YAML in {path}: {exc}") from None
        else:
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"invalid JSON in {path}: {exc}") from None
        return cls.from_dict(data)


# ----------------------------------------------------------------------------------
# Named matrices
# ----------------------------------------------------------------------------------

def _smoke_matrix() -> ScenarioMatrix:
    """2 governors x 2 apps x 2 seeds, a few seconds per cell: CI smoke sweep."""
    return ScenarioMatrix.build(
        name="smoke",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=6.0,
    )


def _baselines_matrix() -> ScenarioMatrix:
    """Every non-learning governor across the six paper apps, 3 replications."""
    return ScenarioMatrix.build(
        name="baselines",
        governors=("schedutil", "performance", "powersave", "conservative"),
        apps=("facebook", "lineage", "pubg", "spotify", "web_browser", "youtube"),
        seeds=(0, 1, 2),
        duration_s=90.0,
        game_duration_s=120.0,
    )


def _platforms_matrix() -> ScenarioMatrix:
    """Cross-platform sweep in the spirit of SysScale's multi-domain study."""
    return ScenarioMatrix.build(
        name="platforms",
        governors=("schedutil", "powersave", "conservative"),
        apps=("facebook", "lineage", "youtube"),
        platforms=("exynos9810", "generic-two-cluster"),
        seeds=(0, 1),
        duration_s=60.0,
    )


def _trained_next_matrix() -> ScenarioMatrix:
    """Trained Next vs schedutil: the paper's actual evaluation protocol.

    Every ``next`` cell loads a per-workload artifact trained once for the
    whole sweep (Section V: "all results for Next were observed when it was
    fully trained on the respective applications"); the replication seeds
    vary the evaluated session, never the trained policy.
    """
    return ScenarioMatrix.build(
        name="trained-next",
        governors=("schedutil", "next"),
        apps=("facebook", "spotify", "youtube"),
        seeds=(0, 1),
        duration_s=60.0,
        training={
            "key": "pretrained",
            "mode": "pretrained",
            "episodes": 6,
            "episode_duration_s": 60.0,
            "seed": 0,
        },
    )


def _federated_matrix() -> ScenarioMatrix:
    """Device-fleet training vs per-device training vs schedutil (Section IV-C).

    The training axis carries three values for ``next`` -- cold, pretrained
    (one device's training budget) and federated (a fleet of devices pooling
    experience through per-round Q-table aggregation) -- so one sweep
    answers the paper's cloud-assisted question: what does fleet-pooled
    experience buy over what a single device learns on its own?  Both
    trained variants pin the same app list, so each trains exactly one
    artifact (one agent, one fleet) shared across every workload and seed.
    The ``repro-sweep`` CLI's ``--devices``/``--rounds``/``--fleet-seed``
    flags override the federated variant's fleet shape.
    """
    apps = ("facebook", "spotify")
    return ScenarioMatrix.build(
        name="federated",
        governors=("schedutil", "next"),
        apps=apps,
        seeds=(0,),
        duration_s=30.0,
        training=(
            {"key": "cold", "mode": "cold"},
            {
                "key": "pretrained",
                "mode": "pretrained",
                "apps": list(apps),
                "episodes": 2,
                "episode_duration_s": 20.0,
                "seed": 0,
            },
            {
                "key": "federated",
                "mode": "federated",
                "apps": list(apps),
                "episodes": 2,
                "episode_duration_s": 20.0,
                "seed": 0,
                "devices": 2,
                "rounds": 2,
            },
        ),
    )


#: Registry of predefined matrices, keyed by the name accepted by the
#: ``repro-sweep`` CLI.
NAMED_MATRICES = {
    "smoke": _smoke_matrix,
    "baselines": _baselines_matrix,
    "platforms": _platforms_matrix,
    "trained-next": _trained_next_matrix,
    "federated": _federated_matrix,
}


def named_matrix(name: str) -> ScenarioMatrix:
    """Instantiate a predefined matrix from :data:`NAMED_MATRICES` by name."""
    try:
        factory = NAMED_MATRICES[name]
    except KeyError:
        raise ValueError(
            f"unknown matrix {name!r}; available: {sorted(NAMED_MATRICES)}"
        ) from None
    return factory()
