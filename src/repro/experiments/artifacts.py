"""Training and storage of trained-agent artifacts for the sweep harness.

The paper's protocol trains Next once per application and evaluates the
frozen policy (Sections IV-B and V).  At sweep scale that split matters
twice over: correctness (evaluation cells must not measure a cold,
epsilon-exploring agent) and cost (a matrix with many seeds and workloads
must not retrain the same agent per cell).  This module provides both
halves:

* :func:`train_artifact` is the deterministic, picklable work unit that
  turns a :class:`~repro.core.artifact.TrainingSpec` into an
  :class:`~repro.core.artifact.AgentArtifact` -- shippable to a process-pool
  worker exactly like a scenario cell, and
* :class:`ArtifactStore` mirrors the runner's ``ResultCache``: a
  fingerprint-keyed store (in memory, optionally backed by a directory) that
  trains each distinct spec exactly once and serves every later request from
  the stored artifact.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import asdict
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.core.agent import AgentConfig
from repro.core.artifact import AgentArtifact, TrainingSpec
from repro.core.persistence import list_entry_paths, quarantine_entry
from repro.core.governor import NextGovernor
from repro.obs.metrics import metrics
from repro.obs.trace import flush_task_metrics, maybe_span
from repro.reliability.clock import monotonic_now
from repro.reliability.faults import SITE_TRAIN_ARTIFACT, fault_point
from repro.sim.config import SimulationConfig
from repro.sim.experiment import train_next_on_apps
from repro.soc.platform import make_platform


def train_artifact(
    spec: TrainingSpec,
    agent_config: Optional[AgentConfig] = None,
    attempt: int = 0,
) -> AgentArtifact:
    """Train one agent per ``spec`` and freeze it into an artifact.

    Training runs through :func:`repro.sim.experiment.train_next_on_apps` --
    the same train-then-freeze path as ``pretrained_next_governor`` -- so
    the captured agent evaluates greedily with the documented per-app seed
    scheme.  The function is a plain top-level callable returning plain
    data: process pools can run it like any cell.

    ``attempt`` is the orchestrator's retry counter for this spec; it feeds
    the fault-injection seam (so a scheduled fault stops firing once its
    ``max_attempt`` budget is spent) and has no effect on the trained
    artifact, which is a pure function of the spec.
    """
    started = monotonic_now()
    try:
        with maybe_span(
            "train",
            fingerprint=spec.fingerprint(agent_config),
            label=spec.label(),
            attempt=attempt,
        ):
            fault_point(SITE_TRAIN_ARTIFACT, spec.fingerprint(agent_config), attempt)
            platform = make_platform(spec.platform)
            overrides = dict(spec.config_overrides)
            simulation_config = None
            if overrides:
                # Train under the spec's environment overrides (the per-episode
                # seed is re-derived by train_next_governor).
                simulation_config = SimulationConfig(
                    refresh_hz=platform.display_refresh_hz,
                    duration_s=spec.episode_duration_s,
                    seed=spec.seed,
                    **overrides,
                )
            governor = NextGovernor(config=agent_config, seed=spec.seed)
            results = train_next_on_apps(
                governor,
                spec.apps,
                platform=platform,
                episodes=spec.episodes,
                episode_duration_s=spec.episode_duration_s,
                seed=spec.seed,
                config=simulation_config,
            )
            return AgentArtifact.capture(
                spec, governor.agent, [asdict(r) for r in results]
            )
    finally:
        metrics().inc("train.artifact_s", monotonic_now() - started)
        flush_task_metrics()


class ArtifactStore:
    """Fingerprint-keyed store of trained agents, mirroring ``ResultCache``.

    With a ``directory`` the store persists each artifact to
    ``<fingerprint>.agent.json`` and re-runs of the same sweep (or other
    sweeps sharing a training spec) load instead of retrain; without one it
    de-duplicates within the process only.  ``trained_count`` /
    ``reused_count`` expose how much training a sweep actually performed.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        # The directory is created lazily on the first store(), so read-only
        # uses (cache lookups, --list-artifacts) never create paths.
        self.directory = directory
        self._memory: Dict[str, AgentArtifact] = {}
        self.trained_count = 0
        self.reused_count = 0

    def _path(self, fingerprint: str) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{fingerprint}.agent.json")

    # -- access -------------------------------------------------------------------------

    def load(
        self, spec: TrainingSpec, agent_config: Optional[AgentConfig] = None
    ) -> Optional[AgentArtifact]:
        """Return the stored artifact for ``spec``, or ``None`` on a miss.

        An unparseable entry (a torn copy on a non-atomic filesystem) is
        quarantined as ``<path>.bad`` and treated as a miss, so one bad file
        retrains one agent instead of raising mid-sweep -- the same
        hardening the runner's ``ResultCache`` applies to cell entries.  A
        parseable entry whose fingerprint does not match is left in place:
        that is a foreign or stale-format file, not corruption.
        """
        fingerprint = spec.fingerprint(agent_config)
        artifact = self._memory.get(fingerprint)
        if artifact is not None:
            return artifact
        path = self._path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        try:
            artifact = AgentArtifact.load(path)
        except (OSError, ValueError, KeyError, TypeError):
            quarantine_entry(path)
            return None  # corrupt entry: treat as a miss and retrain
        if artifact.fingerprint != fingerprint:
            return None
        self._memory[fingerprint] = artifact
        return artifact

    def store(self, artifact: AgentArtifact) -> None:
        """Keep an artifact in memory and, when backed by a directory, on disk."""
        self._memory[artifact.fingerprint] = artifact
        path = self._path(artifact.fingerprint)
        if path is not None:
            artifact.save(path)

    def resolve(
        self, spec: TrainingSpec, agent_config: Optional[AgentConfig] = None
    ) -> Optional[AgentArtifact]:
        """:meth:`load` that also counts the hit as a reuse.

        The single accounting point for "this spec did not need training";
        both the sequential and the pool execution paths go through it.
        """
        artifact = self.load(spec, agent_config)
        if artifact is not None:
            self.reused_count += 1
        return artifact

    def accept(self, artifact: AgentArtifact) -> None:
        """Store a freshly trained artifact and count the training."""
        self.store(artifact)
        self.trained_count += 1

    # -- merge support (used by repro.experiments.distributed) -------------------------

    #: Filename suffix of agent-artifact entries in the shared directory.
    ENTRY_SUFFIX = ".agent.json"

    def entry_paths(self) -> List[str]:
        """Paths of every artifact entry in the store directory, sorted by name."""
        return list_entry_paths(self.directory, self.ENTRY_SUFFIX)

    @staticmethod
    def canonical_entry(data: Dict[str, Any]) -> Dict[str, Any]:
        """The content identity of one artifact entry: the parsed document.

        Training is a pure function of the spec end to end -- even the
        ``training_time_s`` diagnostics accumulate *simulated* seconds, not
        wall clock -- so two shards that trained the same fingerprint must
        agree on every field of the parsed document.  The shard merge engine
        compares artifacts through this hook: honest duplicates merge
        cleanly, any divergence fails loudly.
        """
        return data

    def entries(self) -> List[AgentArtifact]:
        """Every stored artifact (memory plus directory), sorted by fingerprint."""
        by_fingerprint = dict(self._memory)
        if self.directory is not None and os.path.isdir(self.directory):
            for filename in sorted(os.listdir(self.directory)):
                if not filename.endswith(".agent.json"):
                    continue
                fingerprint = filename[: -len(".agent.json")]
                if fingerprint in by_fingerprint:
                    continue
                try:
                    by_fingerprint[fingerprint] = AgentArtifact.load(
                        os.path.join(self.directory, filename)
                    )
                except (OSError, ValueError, KeyError, TypeError):
                    continue
        return [by_fingerprint[key] for key in sorted(by_fingerprint)]

    # -- bulk resolution ----------------------------------------------------------------

    def ensure(
        self,
        specs: Iterable[TrainingSpec],
        agent_config: Optional[AgentConfig] = None,
    ) -> Tuple[Dict[str, AgentArtifact], Dict[str, str]]:
        """Resolve every spec to an artifact, training the missing ones once.

        Already-stored specs are served from the store (counted in
        ``reused_count``); missing ones are trained in-process, persisted and
        counted in ``trained_count``.  (The sweep runner's pool path
        schedules training jobs across its workers itself, gating each
        pretrained cell only on its own artifact.)  Returns
        ``(artifacts, errors)``, both keyed by spec fingerprint; a spec whose
        training raised lands in ``errors`` with its traceback instead of
        aborting the whole resolution, so the sweep's failure isolation
        extends to the training phase.
        """
        artifacts: Dict[str, AgentArtifact] = {}
        errors: Dict[str, str] = {}
        for spec in specs:
            fingerprint = spec.fingerprint(agent_config)
            if fingerprint in artifacts or fingerprint in errors:
                continue
            artifact = self.resolve(spec, agent_config)
            if artifact is not None:
                artifacts[fingerprint] = artifact
                continue
            try:
                artifact = train_artifact(spec, agent_config)
            except Exception:
                errors[fingerprint] = traceback.format_exc()
                continue
            self.accept(artifact)
            artifacts[fingerprint] = artifact
        return artifacts, errors
