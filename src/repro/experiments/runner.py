"""Scenario-matrix execution: sequential or process-parallel, with caching.

The runner owns no simulation logic of its own: every cell funnels through
:func:`execute_cell`, which records the cell's demand trace and hands it to
:func:`repro.sim.experiment.run_trace` -- the same single-cell primitive the
sequential helpers use.  Running with ``max_workers=1`` therefore produces
bit-identical summaries to a pooled run, which the determinism regression
tests assert.

Failure isolation: a cell that raises reports an error :class:`CellResult`
(status ``"error"`` with the traceback) instead of killing the sweep, so a
1000-cell overnight run survives one diverging configuration.

Caching: with a ``cache_dir``, each completed cell is written to
``<fingerprint>.json``; re-running a sweep serves completed cells from disk
and only computes the missing ones.  Error results are *not* cached, so a
fixed bug re-runs its cells automatically.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.artifact import AgentArtifact, TrainingSpec
from repro.core.federated import FleetArtifact, FleetSpec
from repro.core.persistence import atomic_write_json, list_entry_paths
from repro.experiments.artifacts import ArtifactStore, train_artifact
from repro.experiments.federated import (
    FleetBuild,
    FleetStore,
    batch_kernel_available,
    train_device_round,
    train_device_rounds_batched,
    train_fleet_artifact,
)
from repro.experiments.matrix import ScenarioCell, ScenarioMatrix
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    STOCHASTIC_GOVERNORS,
    SessionResult,
    make_governor,
    record_session_trace,
    run_trace,
)
from repro.soc.platform import make_platform
from repro.workloads.session import SessionSegment

#: Progress callback signature: (completed_count, total_count, latest_result).
ProgressCallback = Callable[[int, int, "CellResult"], None]

#: What a cell may evaluate instead of a cold governor: a trained single
#: agent or a trained federated fleet (both expose ``build_governor`` and a
#: content ``fingerprint``).
CellArtifact = Union[AgentArtifact, FleetArtifact]


@dataclass
class CellResult:
    """Outcome of one cell: a summary dict on success, a traceback on failure."""

    cell: ScenarioCell
    status: str
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    from_cache: bool = False
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the cell completed successfully."""
        return self.status == "ok"

    def metric(self, name: str) -> float:
        """Read one summary metric by name (raises on error results)."""
        if self.summary is None:
            raise ValueError(f"cell {self.cell.label()} has no summary ({self.status})")
        value = self.summary.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            scalars = sorted(
                key
                for key, entry in self.summary.items()
                if isinstance(entry, (int, float)) and not isinstance(entry, bool)
            )
            raise ValueError(f"unknown metric {name!r}; available: {scalars}")
        return value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the result cache)."""
        return {
            "cell": self.cell.spec(),
            "status": self.status,
            "summary": self.summary,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            cell=ScenarioCell.from_spec(data["cell"]),
            status=data["status"],
            summary=data.get("summary"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


def summary_to_dict(result: SessionResult) -> Dict[str, Any]:
    """Flatten a :class:`SessionResult` summary into a JSON-clean dict.

    JSON float serialisation round-trips exactly (shortest-repr), so a cached
    summary compares equal to a freshly computed one -- the property the
    determinism tests pin down.

    ``sample_stream_hash`` is the canonical SHA-256 of the full recorded
    sample stream (:meth:`repro.sim.recorder.Recorder.content_hash`): two
    cells agree on it iff their recorded traces are bit-identical.  It is
    what lets a merged distributed sweep prove per-cell equality with a
    single-machine run without shipping the raw samples around.
    """
    summary = asdict(result.summary)
    summary["frame_delivery_ratio"] = result.summary.frame_delivery_ratio
    summary["app_names"] = list(result.app_names)
    summary["governor_name"] = result.governor_name
    summary["sample_stream_hash"] = result.recorder.content_hash()
    return summary


def run_cell_session(
    cell: ScenarioCell, artifact: Optional[CellArtifact] = None
) -> SessionResult:
    """Execute one cell in-process and return the full session result.

    Records the cell's demand trace with its governor-independent
    ``trace_seed``, instantiates the governor (seeding stochastic ones with
    the cell's ``governor_seed``) and replays the trace through the shared
    single-cell primitive.

    A pretrained cell evaluates the frozen greedy policy of its trained
    artifact, a federated cell the merged greedy agent of its trained fleet
    (``training=False`` either way), never a cold exploring agent.  The
    sweep runner resolves artifacts up front through its
    :class:`ArtifactStore` / :class:`FleetStore` and passes them in;
    standalone callers may omit ``artifact``, in which case the cell's
    :class:`TrainingSpec` or :class:`FleetSpec` is trained inline --
    identical result, just without the train-once sharing.
    """
    platform = make_platform(cell.platform)
    segments = [
        SessionSegment(app_name, duration_s)
        for app_name, duration_s in cell.workload.segments
    ]
    trace = record_session_trace(segments, platform=platform, seed=cell.trace_seed)
    spec = cell.training_spec()
    fleet = cell.fleet_spec()
    if fleet is not None:
        if artifact is None:
            artifact = train_fleet_artifact(fleet)
        elif artifact.fingerprint != fleet.fingerprint():
            raise ValueError(
                f"fleet artifact {artifact.fingerprint!r} does not match cell "
                f"{cell.label()} fleet spec {fleet.fingerprint()!r}"
            )
        governor = artifact.build_governor()
    elif spec is not None:
        if artifact is None:
            artifact = train_artifact(spec)
        elif artifact.fingerprint != spec.fingerprint():
            raise ValueError(
                f"artifact {artifact.fingerprint!r} does not match cell "
                f"{cell.label()} training spec {spec.fingerprint()!r}"
            )
        governor = artifact.build_governor()
    else:
        params = dict(cell.governor_params)
        if cell.governor in STOCHASTIC_GOVERNORS:
            params.setdefault("seed", cell.governor_seed)
        governor = make_governor(cell.governor, **params)
    config = SimulationConfig(
        refresh_hz=platform.display_refresh_hz,
        duration_s=trace.duration_s,
        seed=cell.sim_seed,
        **dict(cell.config_overrides),
    )
    return run_trace(trace, governor, platform=platform, config=config)


def execute_cell(
    cell: ScenarioCell, artifact: Optional[CellArtifact] = None
) -> CellResult:
    """Run one cell with failure isolation (the process-pool work unit)."""
    started = time.perf_counter()
    try:
        session = run_cell_session(cell, artifact=artifact)
        return CellResult(
            cell=cell,
            status="ok",
            summary=summary_to_dict(session),
            elapsed_s=time.perf_counter() - started,
        )
    except Exception:
        return CellResult(
            cell=cell,
            status="error",
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - started,
        )


def execute_cells_batched(cells: List[ScenarioCell]) -> List[CellResult]:
    """Run a group of artifact-free cells through the batch kernel.

    All cells must share a platform and (cadence aside) config overrides
    (the grouping in :func:`batchable_cell_groups` guarantees it); each
    cell keeps its own trace, governor and simulation seeds, session
    duration and recording cadence -- mixed durations and cadences run as
    heterogeneous lanes under the masked kernel.  The batched
    device-population kernel is bit-identical per lane to the scalar
    :func:`execute_cell` path (pinned by the batch parity suite), so cached
    results from either route are interchangeable.

    Failure isolation matches the scalar path's granularity: any batch-level
    failure (including one diverging cell) falls back to running every cell
    of the group through :func:`execute_cell` individually, so a single bad
    configuration degrades throughput, never correctness.
    """
    started = time.perf_counter()
    try:
        from repro.sim.batch import BatchSimulation
        from repro.workloads.trace import TracePlayer

        platform = make_platform(cells[0].platform)
        traces = []
        governors = []
        configs = []
        for cell in cells:
            segments = [
                SessionSegment(app_name, duration_s)
                for app_name, duration_s in cell.workload.segments
            ]
            traces.append(
                record_session_trace(segments, platform=platform, seed=cell.trace_seed)
            )
            params = dict(cell.governor_params)
            if cell.governor in STOCHASTIC_GOVERNORS:
                params.setdefault("seed", cell.governor_seed)
            governors.append(make_governor(cell.governor, **params))
            configs.append(
                SimulationConfig(
                    refresh_hz=platform.display_refresh_hz,
                    duration_s=traces[-1].duration_s,
                    seed=cell.sim_seed,
                    **dict(cell.config_overrides),
                )
            )
        batch = BatchSimulation(platform, governors, configs)
        batch.run(
            [TracePlayer(trace) for trace in traces],
            duration_s=[trace.duration_s for trace in traces],
        )
        elapsed_s = (time.perf_counter() - started) / len(cells)
        results = []
        for index, cell in enumerate(cells):
            recorder = batch.device_recorder(index)
            session = SessionResult(
                governor_name=governors[index].name,
                app_names=list(traces[index].app_names()),
                recorder=recorder,
                summary=recorder.summary(),
            )
            results.append(
                CellResult(
                    cell=cell,
                    status="ok",
                    summary=summary_to_dict(session),
                    elapsed_s=elapsed_s,
                )
            )
        return results
    except Exception:
        return [execute_cell(cell) for cell in cells]


def batchable_cell_groups(
    pending: List[Tuple[int, ScenarioCell]], workers: int = 1
) -> Tuple[List[List[Tuple[int, ScenarioCell]]], List[Tuple[int, ScenarioCell]]]:
    """Partition pending cells into batch-kernel groups and scalar leftovers.

    Only artifact-free cells batch (trained and federated cells evaluate a
    frozen artifact resolved elsewhere), and only cells agreeing on
    platform and config overrides (recording cadence aside) can share one
    :class:`~repro.sim.batch.BatchSimulation`.  Session durations and
    ``record_every_n_ticks`` overrides may differ within a group: mixed
    cells run as heterogeneous lanes under the masked kernel.  Each group
    is split into up to ``workers`` chunks of at least two cells so a
    process pool still spreads a large homogeneous sweep across its
    workers; singleton leftovers run scalar.

    Returns ``(groups, rest)`` preserving the original ``(index, cell)``
    pairs; ``rest`` keeps its input order.
    """
    buckets: Dict[Any, List[Tuple[int, ScenarioCell]]] = {}
    rest: List[Tuple[int, ScenarioCell]] = []
    for index, cell in pending:
        if cell.training_spec() is not None or cell.fleet_spec() is not None:
            rest.append((index, cell))
            continue
        shared_overrides = tuple(
            (name, value)
            for name, value in cell.config_overrides
            if name != "record_every_n_ticks"
        )
        key = (cell.platform, shared_overrides)
        buckets.setdefault(key, []).append((index, cell))
    groups: List[List[Tuple[int, ScenarioCell]]] = []
    for bucket in buckets.values():
        if len(bucket) < 2:
            rest.extend(bucket)
            continue
        chunk_count = max(1, min(workers, len(bucket) // 2))
        size = -(-len(bucket) // chunk_count)  # ceil division
        for start in range(0, len(bucket), size):
            chunk = bucket[start : start + size]
            if len(chunk) >= 2:
                groups.append(chunk)
            else:
                rest.extend(chunk)
    rest.sort(key=lambda pair: pair[0])
    return groups, rest


def _training_error(fingerprint: str, spec: TrainingSpec, details: str) -> str:
    """One message format for "this cell's artifact failed to train"."""
    return (
        f"training failed for artifact {fingerprint} ({spec.label()}):\n{details}"
    )


def _fleet_error(fingerprint: str, spec: FleetSpec, details: str) -> str:
    """One message format for "this cell's fleet failed to train"."""
    return f"training failed for fleet {fingerprint} ({spec.label()}):\n{details}"


def default_artifact_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Where a sweep with this result cache keeps its trained-agent artifacts."""
    if cache_dir is None:
        return None
    return os.path.join(cache_dir, "artifacts")


class ResultCache:
    """On-disk JSON cache of completed cells, keyed by cell fingerprint."""

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _path(self, cell: ScenarioCell) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{cell.fingerprint()}.json")

    @staticmethod
    def _quarantine(path: str) -> None:
        """Move a corrupt entry aside as ``<path>.bad`` (best effort).

        Renaming instead of deleting keeps the evidence for post-mortems,
        frees the canonical path so the re-run can store a fresh result, and
        -- because merge/iteration only considers ``*.json`` names -- keeps
        the quarantined file out of every later cache operation.
        """
        try:
            os.replace(path, f"{path}.bad")
        except OSError:
            pass  # e.g. a racing runner already quarantined or replaced it

    def _read(self, cell: ScenarioCell) -> Tuple[Optional[CellResult], Optional[str]]:
        """Acceptance check without side effects: ``(result, corrupt_path)``.

        ``result`` is the accepted entry or ``None``; ``corrupt_path`` names
        the file when the miss was caused by unparseable content (so
        :meth:`load` can quarantine it) rather than by absence, semantic
        mismatch or a stale format.
        """
        path = self._path(cell)
        if path is None or not os.path.exists(path):
            return None, None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = CellResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None, path  # corrupt entry
        # Fingerprints are truncated hashes; verify the stored cell really is
        # semantically this cell before trusting the hit.  Comparing the
        # canonical payloads (the fingerprint hash inputs) applies the same
        # normalisation the fingerprint does -- matrix name excluded,
        # training variant reduced to its execution semantics -- in
        # JSON-canonical form: the cached payload already went through JSON
        # (tuples became lists), so the live one is normalised the same way.
        cached_payload = json.loads(json.dumps(result.cell.canonical_payload()))
        live_payload = json.loads(json.dumps(cell.canonical_payload()))
        if cached_payload != live_payload or not result.ok:
            return None, None
        if result.summary is None or "sample_stream_hash" not in result.summary:
            # Entry from before summaries carried the recorded-stream hash
            # (the distributed-merge parity currency).  The execution
            # semantics -- and therefore the fingerprint -- are unchanged,
            # so treat it as a stale-format miss: the cell recomputes once
            # and the rewritten entry carries the hash.
            return None, None
        return result, None

    def peek(self, cell: ScenarioCell) -> Optional[CellResult]:
        """Read-only form of :meth:`load`: same acceptance, no side effects.

        Used by inspection paths (``repro-sweep shard status``) that must
        agree with :meth:`load` about what counts as a completed cell but
        must not touch the directory -- not even to quarantine a torn file
        that might still be mid-copy.
        """
        result, _ = self._read(cell)
        return result

    def load(self, cell: ScenarioCell) -> Optional[CellResult]:
        """Return the cached result for ``cell``, or ``None`` on a miss.

        A truncated or otherwise corrupt entry (a torn copy, a filled disk
        mid-write on a non-atomic filesystem) is quarantined with a ``.bad``
        suffix and treated as a miss, so one bad file re-runs one cell
        instead of raising mid-sweep -- the same hardening the artifact
        store applies to its entries.
        """
        result, corrupt_path = self._read(cell)
        if corrupt_path is not None:
            self._quarantine(corrupt_path)
        if result is None:
            return None
        result.cell = cell
        result.from_cache = True
        return result

    def store(self, result: CellResult) -> None:
        """Persist a successful result (errors are never cached)."""
        path = self._path(result.cell)
        if path is None or not result.ok:
            return
        atomic_write_json(path, result.to_dict())

    # -- merge support (used by repro.experiments.distributed) -------------------------

    #: Filename suffix of cache entries; everything else in the directory
    #: (``.bad`` quarantines, ``.tmp.<pid>`` staging files, the ``artifacts``
    #: subdirectory) is not a result entry.
    ENTRY_SUFFIX = ".json"

    def entry_paths(self) -> List[str]:
        """Paths of every result entry in the cache directory, sorted by name."""
        return list_entry_paths(self.directory, self.ENTRY_SUFFIX)

    @staticmethod
    def canonical_entry(data: Dict[str, Any]) -> Dict[str, Any]:
        """The content identity of one cache entry: everything but wall time.

        Two shards that executed the same cell produce entries identical in
        every field except ``elapsed_s`` (machine-dependent wall clock, which
        cannot affect the result).  The shard merge engine compares entries
        through this normalisation, so honest duplicates merge cleanly while
        any divergence in actual content -- summary values, status, the cell
        spec itself -- still fails the merge loudly.
        """
        normalised = dict(data)
        normalised.pop("elapsed_s", None)
        return normalised


@dataclass
class SweepResult:
    """All cell results of one sweep, in the matrix's pre-registered order."""

    matrix: ScenarioMatrix
    results: List[CellResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> List[CellResult]:
        """Successful cells."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self) -> List[CellResult]:
        """Failed cells (error results)."""
        return [result for result in self.results if not result.ok]

    @property
    def cached_count(self) -> int:
        """How many cells were served from the result cache."""
        return sum(1 for result in self.results if result.from_cache)

    def result_for(self, cell: ScenarioCell) -> CellResult:
        """The result of one specific cell (by fingerprint)."""
        wanted = cell.fingerprint()
        for result in self.results:
            if result.cell.fingerprint() == wanted:
                return result
        raise KeyError(f"no result for cell {cell.label()}")


class SweepRunner:
    """Runs every cell of a matrix, optionally across a process pool.

    ``max_workers=1`` (or a single pending cell) executes in-process through
    exactly the same :func:`execute_cell` path the pool workers use.

    Pretrained cells add a phase before cell execution: every distinct
    :class:`TrainingSpec` among the pending cells is resolved through the
    runner's :class:`ArtifactStore` -- loaded when stored, trained exactly
    once otherwise (across the same process pool the cells use) -- and each
    cell then evaluates its frozen artifact.  Federated cells resolve the
    same way through the :class:`FleetStore`: every distinct
    :class:`FleetSpec` trains once (its per-device jobs fanned out over the
    pool, its round-0 device training cached in the artifact store) or is
    served -- complete or as a same-lineage resume point -- from disk.
    ``artifact_dir`` defaults to ``<cache_dir>/artifacts`` so cached sweeps
    also reuse their agents and fleets.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        artifact_dir: Optional[str] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.max_workers = max_workers
        self.cache = ResultCache(cache_dir)
        if artifact_dir is None:
            artifact_dir = default_artifact_dir(cache_dir)
        self.artifacts = ArtifactStore(artifact_dir)
        self.fleets = FleetStore(artifact_dir)

    def run(
        self,
        matrix: ScenarioMatrix,
        progress: Optional[ProgressCallback] = None,
        cells: Optional[List[ScenarioCell]] = None,
    ) -> SweepResult:
        """Execute the matrix and return results in cell order.

        ``cells`` restricts execution to a subset of the matrix (in the given
        order) -- the distributed shard worker passes its shard's cells here
        so one shard runs through exactly the same scheduling, caching and
        artifact-resolution paths as a whole-matrix sweep.
        """
        if cells is None:
            cells = matrix.cells()
        total = len(cells)
        slots: List[Optional[CellResult]] = [None] * total
        done = 0

        def deliver(index: int, result: CellResult) -> None:
            nonlocal done
            slots[index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        pending: List[Tuple[int, ScenarioCell]] = []
        specs: Dict[str, TrainingSpec] = {}
        fleet_specs: Dict[str, FleetSpec] = {}
        for index, cell in enumerate(cells):
            cached = self.cache.load(cell)
            if cached is not None:
                deliver(index, cached)
            else:
                pending.append((index, cell))
                spec = cell.training_spec()
                if spec is not None:
                    specs.setdefault(spec.fingerprint(), spec)
                fleet = cell.fleet_spec()
                if fleet is not None:
                    fleet_specs.setdefault(fleet.fingerprint(), fleet)

        workers = self.max_workers if self.max_workers is not None else os.cpu_count() or 1
        if workers <= 1 or len(pending) <= 1:
            artifacts, errors = self.artifacts.ensure(specs.values())
            fleets, fleet_errors = self.fleets.ensure(
                fleet_specs.values(), artifacts=self.artifacts
            )
            if batch_kernel_available():
                groups, rest = batchable_cell_groups(pending)
            else:
                groups, rest = [], pending
            for group in groups:
                batch_results = execute_cells_batched([cell for _, cell in group])
                for (index, cell), result in zip(group, batch_results):
                    self.cache.store(result)
                    deliver(index, result)
            for index, cell in rest:
                result = self._execute_pending(
                    cell, artifacts, errors, fleets, fleet_errors
                )
                self.cache.store(result)
                deliver(index, result)
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                try:
                    self._run_pool(pool, pending, specs, fleet_specs, deliver)
                except KeyboardInterrupt:
                    # Cancel everything still queued so the executor's
                    # __exit__ only waits for the jobs already running, not
                    # the whole backlog.  Every result delivered before the
                    # interrupt is already in the cache, so a re-run resumes
                    # from exactly what completed.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise

        return SweepResult(matrix=matrix, results=[slot for slot in slots if slot is not None])

    def _run_pool(
        self,
        pool: ProcessPoolExecutor,
        pending: List[Tuple[int, ScenarioCell]],
        specs: Dict[str, TrainingSpec],
        fleet_specs: Dict[str, FleetSpec],
        deliver: Callable[[int, CellResult], None],
    ) -> None:
        """Pool scheduling: training jobs gate only their own dependent cells.

        Missing artifacts are submitted *first* (so training starts on the
        first free workers), artifact-free cells run concurrently with the
        training phase, already-stored artifacts dispatch their cells
        immediately, and each freshly trained artifact releases its cells the
        moment it lands -- no cell ever waits on an unrelated spec.

        Federated fleets resolve through the same event loop: stored fleets
        load up front (a same-lineage shallower fleet resumes), a missing
        fleet's round-0 device specs join the training queue (deduplicated
        against the cells' own specs and the artifact store), each
        continuation round fans one job per device across the pool as soon
        as the previous round's aggregation lands, and a fleet's cells
        dispatch the moment its artifact is captured.  Unrelated cells keep
        flowing while fleets train, and a fleet failure fails exactly its
        own cells.
        """
        pending_futures: set = set()
        cell_futures: Dict[Any, Tuple[int, ScenarioCell]] = {}
        waiting: Dict[str, List[Tuple[int, ScenarioCell]]] = {}

        # -- fleet state -------------------------------------------------------
        fleets: Dict[str, FleetArtifact] = {}
        builds: Dict[str, FleetBuild] = {}
        failed_fleets: Dict[str, str] = {}
        fleet_waiting: Dict[str, List[Tuple[int, ScenarioCell]]] = {}
        device_artifacts: Dict[str, AgentArtifact] = {}
        device_needs: Dict[str, List[str]] = {}  # device spec fp -> fleet fps
        missing_devices: Dict[str, set] = {}  # fleet fp -> unresolved device fps
        round_futures: Dict[Any, Tuple[str, int, int]] = {}
        round_buffers: Dict[str, List[Optional[Dict[str, Any]]]] = {}
        batched_round_futures: Dict[Any, Tuple[str, int]] = {}
        batched_cell_futures: Dict[Any, List[Tuple[int, ScenarioCell]]] = {}
        use_batch_kernel = batch_kernel_available()

        for fleet_fingerprint, fleet_spec in fleet_specs.items():
            stored = self.fleets.load(fleet_spec)
            if stored is not None:
                self.fleets.reused_count += 1
                fleets[fleet_fingerprint] = stored
            else:
                builds[fleet_fingerprint] = FleetBuild(
                    fleet_spec, start=self.fleets.resume_candidate(fleet_spec)
                )

        # -- artifact resolution: cell specs + fleet round-0 device specs ------
        artifacts: Dict[str, AgentArtifact] = {}
        missing: Dict[str, TrainingSpec] = {}
        for fleet_fingerprint, build in builds.items():
            if not build.needs_round0:
                continue
            unresolved = set()
            for device_spec in build.device_specs():
                fingerprint = device_spec.fingerprint()
                if fingerprint in device_artifacts:
                    continue
                if fingerprint not in missing:
                    artifact = self.artifacts.resolve(device_spec)
                    if artifact is not None:
                        device_artifacts[fingerprint] = artifact
                        continue
                    missing[fingerprint] = device_spec
                unresolved.add(fingerprint)
                device_needs.setdefault(fingerprint, []).append(fleet_fingerprint)
            if unresolved:
                missing_devices[fleet_fingerprint] = unresolved
        for fingerprint, spec in specs.items():
            if fingerprint in missing:
                continue  # already queued as a fleet device spec
            if fingerprint in device_artifacts:
                artifacts[fingerprint] = device_artifacts[fingerprint]
                continue
            artifact = self.artifacts.resolve(spec)
            if artifact is not None:
                artifacts[fingerprint] = artifact
            else:
                missing[fingerprint] = spec

        training_futures: Dict[Any, str] = {}
        for fingerprint, spec in missing.items():
            future = pool.submit(train_artifact, spec)
            training_futures[future] = fingerprint
            pending_futures.add(future)

        def submit_cell(
            index: int, cell: ScenarioCell, artifact: Optional[CellArtifact] = None
        ) -> None:
            if isinstance(artifact, FleetArtifact):
                # Don't serialise N device states per cell; evaluation only
                # reads the merged agent.
                artifact = artifact.evaluation_only()
            future = pool.submit(execute_cell, cell, artifact)
            cell_futures[future] = (index, cell)
            pending_futures.add(future)

        def fail_fleet(fleet_fingerprint: str, details: str) -> None:
            failed_fleets[fleet_fingerprint] = details
            round_buffers.pop(fleet_fingerprint, None)
            error = _fleet_error(
                fleet_fingerprint, fleet_specs[fleet_fingerprint], details
            )
            for index, cell in fleet_waiting.pop(fleet_fingerprint, ()):
                deliver(index, CellResult(cell=cell, status="error", error=error))

        def advance_fleet(fleet_fingerprint: str) -> None:
            """Submit the build's next round, or capture and release it."""
            build = builds[fleet_fingerprint]
            if build.finished:
                artifact = build.artifact()
                self.fleets.accept(artifact, resumed=build.resumed)
                fleets[fleet_fingerprint] = artifact
                for index, cell in fleet_waiting.pop(fleet_fingerprint, ()):
                    submit_cell(index, cell, artifact)
                return
            round_index, jobs = build.round_jobs()
            if use_batch_kernel and len(jobs) > 1:
                # One pool task steps the whole fleet through the batched
                # device-population kernel -- bit-identical to the
                # one-task-per-device fan-out (the federated parity tests
                # pin it), but the round costs one worker instead of N.
                future = pool.submit(train_device_rounds_batched, jobs)
                batched_round_futures[future] = (fleet_fingerprint, round_index)
                pending_futures.add(future)
                return
            round_buffers[fleet_fingerprint] = [None] * len(jobs)
            for device, job in enumerate(jobs):
                future = pool.submit(train_device_round, *job)
                round_futures[future] = (fleet_fingerprint, round_index, device)
                pending_futures.add(future)

        # Kick off fleets that need no round-0 training: resumed lineages,
        # and fleets whose device artifacts were all served from the store.
        for fleet_fingerprint, build in builds.items():
            if not build.needs_round0:
                advance_fleet(fleet_fingerprint)
            elif fleet_fingerprint not in missing_devices:
                build.provide_round0(device_artifacts)
                advance_fleet(fleet_fingerprint)

        if use_batch_kernel:
            # Homogeneous artifact-free cells run through the batched
            # device-population kernel, chunked so the pool still spreads a
            # large sweep across its workers; everything else (trained,
            # federated, singleton cells) dispatches per cell below.
            cell_groups, dispatch = batchable_cell_groups(
                pending, workers=getattr(pool, "_max_workers", 1)
            )
            for group in cell_groups:
                future = pool.submit(
                    execute_cells_batched, [cell for _, cell in group]
                )
                batched_cell_futures[future] = group
                pending_futures.add(future)
        else:
            dispatch = pending

        for index, cell in dispatch:
            fleet = cell.fleet_spec()
            if fleet is not None:
                fleet_fingerprint = fleet.fingerprint()
                if fleet_fingerprint in fleets:
                    submit_cell(index, cell, fleets[fleet_fingerprint])
                else:
                    # No fleet can have failed yet (nothing has completed),
                    # so every unresolved fleet's cells simply queue.
                    fleet_waiting.setdefault(fleet_fingerprint, []).append(
                        (index, cell)
                    )
                continue
            spec = cell.training_spec()
            if spec is None:
                submit_cell(index, cell)
                continue
            fingerprint = spec.fingerprint()
            if fingerprint in artifacts:
                submit_cell(index, cell, artifacts[fingerprint])
            else:
                waiting.setdefault(fingerprint, []).append((index, cell))

        while pending_futures:
            finished, _ = wait(pending_futures, return_when=FIRST_COMPLETED)
            for future in finished:
                pending_futures.discard(future)
                if future in training_futures:
                    fingerprint = training_futures[future]
                    spec = missing[fingerprint]
                    try:
                        artifact = future.result()
                    except Exception:
                        # The artifact failed to train: fail its cells, and
                        # any fleet whose round 0 needed it, without
                        # occupying workers (errors are never cached).
                        error = _training_error(
                            fingerprint, spec, traceback.format_exc()
                        )
                        for index, cell in waiting.pop(fingerprint, ()):
                            deliver(
                                index,
                                CellResult(cell=cell, status="error", error=error),
                            )
                        for fleet_fingerprint in device_needs.pop(fingerprint, ()):
                            if fleet_fingerprint not in failed_fleets:
                                fail_fleet(fleet_fingerprint, error)
                        continue
                    self.artifacts.accept(artifact)
                    device_artifacts[fingerprint] = artifact
                    for index, cell in waiting.pop(fingerprint, ()):
                        submit_cell(index, cell, artifact)
                    for fleet_fingerprint in device_needs.pop(fingerprint, ()):
                        if fleet_fingerprint in failed_fleets:
                            continue
                        unresolved = missing_devices[fleet_fingerprint]
                        unresolved.discard(fingerprint)
                        if not unresolved:
                            del missing_devices[fleet_fingerprint]
                            builds[fleet_fingerprint].provide_round0(device_artifacts)
                            advance_fleet(fleet_fingerprint)
                elif future in batched_cell_futures:
                    group = batched_cell_futures.pop(future)
                    try:
                        results = future.result()
                    except Exception:
                        # Pool infrastructure failed (e.g. worker killed):
                        # retry the group's cells individually, restoring
                        # the scalar path's per-cell failure isolation.
                        results = None
                    if results is None or len(results) != len(group):
                        for index, cell in group:
                            submit_cell(index, cell)
                        continue
                    for (index, cell), result in zip(group, results):
                        self.cache.store(result)
                        deliver(index, result)
                elif future in batched_round_futures:
                    fleet_fingerprint, round_index = batched_round_futures.pop(future)
                    if fleet_fingerprint in failed_fleets:
                        continue
                    try:
                        states = future.result()
                    except Exception:
                        fail_fleet(fleet_fingerprint, traceback.format_exc())
                        continue
                    builds[fleet_fingerprint].finish_round(round_index, states)
                    advance_fleet(fleet_fingerprint)
                elif future in round_futures:
                    fleet_fingerprint, round_index, device = round_futures.pop(future)
                    if fleet_fingerprint in failed_fleets:
                        continue  # a sibling device job already doomed it
                    try:
                        state = future.result()
                    except Exception:
                        fail_fleet(fleet_fingerprint, traceback.format_exc())
                        continue
                    buffer = round_buffers[fleet_fingerprint]
                    buffer[device] = state
                    if all(entry is not None for entry in buffer):
                        del round_buffers[fleet_fingerprint]
                        builds[fleet_fingerprint].finish_round(round_index, buffer)
                        advance_fleet(fleet_fingerprint)
                else:
                    index, cell = cell_futures[future]
                    try:
                        result = future.result()
                    except Exception:
                        # execute_cell catches workload errors itself;
                        # reaching here means the pool infrastructure failed
                        # (e.g. a worker was killed).  Isolate it like any
                        # other error.
                        result = CellResult(
                            cell=cell, status="error", error=traceback.format_exc()
                        )
                    self.cache.store(result)
                    deliver(index, result)

    @staticmethod
    def _resolve_artifact(
        cell: ScenarioCell,
        artifacts: Dict[str, "AgentArtifact"],
        errors: Dict[str, str],
        fleets: Dict[str, "FleetArtifact"],
        fleet_errors: Dict[str, str],
    ) -> Tuple[Optional[CellArtifact], Optional[str]]:
        """The cell's trained artifact/fleet, or the training error that doomed it."""
        fleet = cell.fleet_spec()
        if fleet is not None:
            fingerprint = fleet.fingerprint()
            if fingerprint in fleet_errors:
                return None, _fleet_error(fingerprint, fleet, fleet_errors[fingerprint])
            return fleets.get(fingerprint), None
        spec = cell.training_spec()
        if spec is None:
            return None, None
        fingerprint = spec.fingerprint()
        if fingerprint in errors:
            return None, _training_error(fingerprint, spec, errors[fingerprint])
        return artifacts.get(fingerprint), None

    def _execute_pending(
        self,
        cell: ScenarioCell,
        artifacts: Dict[str, "AgentArtifact"],
        errors: Dict[str, str],
        fleets: Dict[str, "FleetArtifact"],
        fleet_errors: Dict[str, str],
    ) -> CellResult:
        artifact, error = self._resolve_artifact(
            cell, artifacts, errors, fleets, fleet_errors
        )
        if error is not None:
            return CellResult(cell=cell, status="error", error=error)
        return execute_cell(cell, artifact=artifact)

def run_matrix(
    matrix: ScenarioMatrix,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        max_workers=max_workers, cache_dir=cache_dir, artifact_dir=artifact_dir
    )
    return runner.run(matrix, progress=progress)
