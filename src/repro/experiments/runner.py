"""Scenario-matrix execution: sequential or process-parallel, with caching.

The runner owns no simulation logic of its own: every cell funnels through
:func:`execute_cell`, which records the cell's demand trace and hands it to
:func:`repro.sim.experiment.run_trace` -- the same single-cell primitive the
sequential helpers use.  Running with ``max_workers=1`` therefore produces
bit-identical summaries to a pooled run, which the determinism regression
tests assert.

Failure isolation: a cell that raises reports an error :class:`CellResult`
(status ``"error"`` with the traceback) instead of killing the sweep, so a
1000-cell overnight run survives one diverging configuration.

Fault tolerance (:mod:`repro.reliability`): failures are *classified* where
the exception object still exists -- transient infrastructure failures
(injected faults, broken pools, store I/O errors, timeouts) retry with
bounded seeded backoff, while deterministic failures (anything else, or the
same traceback twice in a row) are quarantined as permanent immediately.
A broken pool (crashed worker) or an expired watchdog deadline (hung
worker) tears the pool down and rebuilds it, resubmitting only the cells
that were in flight -- their attempt counters bumped so first-attempt-only
injected faults cannot re-fire -- and after ``max_pool_rebuilds`` restarts
the *remaining* cells (never the already-delivered ones) finish
sequentially in the orchestrator, where injected crashes raise instead of
exiting.  All of this is safe because of the bit-identity contract: a
retried cell can only ever produce the same bytes the first attempt would
have, which the chaos harness pins per cell via ``sample_stream_hash``.

Caching: with a ``cache_dir``, each completed cell is written to
``<fingerprint>.json``; re-running a sweep serves completed cells from disk
and only computes the missing ones.  Error results are *not* cached, so a
fixed bug re-runs its cells automatically.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.artifact import AgentArtifact, TrainingSpec
from repro.core.federated import FleetArtifact, FleetSpec
from repro.core.persistence import atomic_write_json, list_entry_paths
from repro.experiments.artifacts import ArtifactStore, train_artifact
from repro.experiments.federated import (
    FleetBuild,
    FleetStore,
    batch_kernel_available,
    train_device_round,
    train_device_rounds_batched,
    train_fleet_artifact,
)
from repro.experiments.matrix import ScenarioCell, ScenarioMatrix
from repro.obs.metrics import metrics
from repro.obs.profile import active_profiler
from repro.obs.trace import active_tracer, emit_event, flush_task_metrics
from repro.reliability.clock import monotonic_now
from repro.reliability.faults import (
    SITE_EXECUTE_BATCH,
    SITE_EXECUTE_CELL,
    fault_point,
    mark_worker_process,
)
from repro.reliability.retry import (
    PERMANENT,
    TRANSIENT,
    RetryPolicy,
    RetryState,
    classify_exception,
)
from repro.reliability.watchdog import WatchdogPolicy
from repro.sim.config import SimulationConfig
from repro.sim.experiment import (
    STOCHASTIC_GOVERNORS,
    SessionResult,
    make_governor,
    record_session_trace,
    run_trace,
)
from repro.soc.platform import make_platform
from repro.workloads.session import SessionSegment

#: Progress callback signature: (completed_count, total_count, latest_result).
ProgressCallback = Callable[[int, int, "CellResult"], None]

#: What a cell may evaluate instead of a cold governor: a trained single
#: agent or a trained federated fleet (both expose ``build_governor`` and a
#: content ``fingerprint``).
CellArtifact = Union[AgentArtifact, FleetArtifact]


@dataclass
class CellResult:
    """Outcome of one cell: a summary dict on success, a traceback on failure.

    ``error_kind`` classifies a failure as ``"transient"`` (infrastructure:
    a retry could help) or ``"permanent"`` (deterministic, or retries
    exhausted); ``error_type`` is the raising exception's class name.
    ``attempts`` is the retry lineage -- one record per failed attempt that
    preceded this result -- so a cell that succeeded after two injected
    faults still documents them.  All three are populated only when
    something actually failed, keeping fault-free results (and their cached
    entries) byte-identical to a runner without the retry machinery.
    """

    cell: ScenarioCell
    status: str
    summary: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    from_cache: bool = False
    elapsed_s: float = 0.0
    error_kind: Optional[str] = None
    error_type: Optional[str] = None
    attempts: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        """Whether the cell completed successfully."""
        return self.status == "ok"

    def metric(self, name: str) -> float:
        """Read one summary metric by name (raises on error results)."""
        if self.summary is None:
            raise ValueError(f"cell {self.cell.label()} has no summary ({self.status})")
        value = self.summary.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            scalars = sorted(
                key
                for key, entry in self.summary.items()
                if isinstance(entry, (int, float)) and not isinstance(entry, bool)
            )
            raise ValueError(f"unknown metric {name!r}; available: {scalars}")
        return value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the result cache).

        The failure/retry fields are emitted only when set, so a fault-free
        success serialises to exactly the pre-reliability document -- cache
        entries stay byte-stable across the feature's introduction.
        """
        data: Dict[str, Any] = {
            "cell": self.cell.spec(),
            "status": self.status,
            "summary": self.summary,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }
        if self.error_kind is not None:
            data["error_kind"] = self.error_kind
        if self.error_type is not None:
            data["error_type"] = self.error_type
        if self.attempts:
            data["attempts"] = self.attempts
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            cell=ScenarioCell.from_spec(data["cell"]),
            status=data["status"],
            summary=data.get("summary"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            error_kind=data.get("error_kind"),
            error_type=data.get("error_type"),
            attempts=data.get("attempts"),
        )


def summary_to_dict(result: SessionResult) -> Dict[str, Any]:
    """Flatten a :class:`SessionResult` summary into a JSON-clean dict.

    JSON float serialisation round-trips exactly (shortest-repr), so a cached
    summary compares equal to a freshly computed one -- the property the
    determinism tests pin down.

    ``sample_stream_hash`` is the canonical SHA-256 of the full recorded
    sample stream (:meth:`repro.sim.recorder.Recorder.content_hash`): two
    cells agree on it iff their recorded traces are bit-identical.  It is
    what lets a merged distributed sweep prove per-cell equality with a
    single-machine run without shipping the raw samples around.
    """
    summary = asdict(result.summary)
    summary["frame_delivery_ratio"] = result.summary.frame_delivery_ratio
    summary["app_names"] = list(result.app_names)
    summary["governor_name"] = result.governor_name
    summary["sample_stream_hash"] = result.recorder.content_hash()
    return summary


def run_cell_session(
    cell: ScenarioCell, artifact: Optional[CellArtifact] = None
) -> SessionResult:
    """Execute one cell in-process and return the full session result.

    Records the cell's demand trace with its governor-independent
    ``trace_seed``, instantiates the governor (seeding stochastic ones with
    the cell's ``governor_seed``) and replays the trace through the shared
    single-cell primitive.

    A pretrained cell evaluates the frozen greedy policy of its trained
    artifact, a federated cell the merged greedy agent of its trained fleet
    (``training=False`` either way), never a cold exploring agent.  The
    sweep runner resolves artifacts up front through its
    :class:`ArtifactStore` / :class:`FleetStore` and passes them in;
    standalone callers may omit ``artifact``, in which case the cell's
    :class:`TrainingSpec` or :class:`FleetSpec` is trained inline --
    identical result, just without the train-once sharing.
    """
    platform = make_platform(cell.platform)
    segments = [
        SessionSegment(app_name, duration_s)
        for app_name, duration_s in cell.workload.segments
    ]
    trace = record_session_trace(segments, platform=platform, seed=cell.trace_seed)
    spec = cell.training_spec()
    fleet = cell.fleet_spec()
    if fleet is not None:
        if artifact is None:
            artifact = train_fleet_artifact(fleet)
        elif artifact.fingerprint != fleet.fingerprint():
            raise ValueError(
                f"fleet artifact {artifact.fingerprint!r} does not match cell "
                f"{cell.label()} fleet spec {fleet.fingerprint()!r}"
            )
        governor = artifact.build_governor()
    elif spec is not None:
        if artifact is None:
            artifact = train_artifact(spec)
        elif artifact.fingerprint != spec.fingerprint():
            raise ValueError(
                f"artifact {artifact.fingerprint!r} does not match cell "
                f"{cell.label()} training spec {spec.fingerprint()!r}"
            )
        governor = artifact.build_governor()
    else:
        params = dict(cell.governor_params)
        if cell.governor in STOCHASTIC_GOVERNORS:
            params.setdefault("seed", cell.governor_seed)
        governor = make_governor(cell.governor, **params)
    config = SimulationConfig(
        refresh_hz=platform.display_refresh_hz,
        duration_s=trace.duration_s,
        seed=cell.sim_seed,
        **dict(cell.config_overrides),
    )
    return run_trace(trace, governor, platform=platform, config=config)


def execute_cell(
    cell: ScenarioCell,
    artifact: Optional[CellArtifact] = None,
    attempt: int = 0,
) -> CellResult:
    """Run one cell with failure isolation (the process-pool work unit).

    ``attempt`` is the orchestrator's retry counter for this cell: it feeds
    the fault-injection seam (so a scheduled fault stops firing once its
    ``max_attempt`` budget is spent) and has no effect on a successful
    result, which is a pure function of the cell.  A failure is classified
    here, where the exception object still exists -- ``error_kind`` tells
    the orchestrator whether a retry could help (transient infrastructure
    failure) or cannot (deterministic error in the cell itself).
    """
    started = time.perf_counter()
    tracer = active_tracer()
    span = (
        tracer.begin(
            "cell", fingerprint=cell.fingerprint(), label=cell.label(), attempt=attempt
        )
        if tracer is not None
        else None
    )
    try:
        fault_point(SITE_EXECUTE_CELL, cell.fingerprint(), attempt)
        session = run_cell_session(cell, artifact=artifact)
        if span is not None:
            span.note("status", "ok")
        return CellResult(
            cell=cell,
            status="ok",
            summary=summary_to_dict(session),
            elapsed_s=time.perf_counter() - started,
        )
    except Exception as exc:
        if span is not None:
            span.note("status", "error")
            span.note("error_type", type(exc).__name__)
        return CellResult(
            cell=cell,
            status="error",
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - started,
            error_kind=classify_exception(exc),
            error_type=type(exc).__name__,
        )
    finally:
        if tracer is not None:
            tracer.end(span)
            flush_task_metrics()


def execute_cells_batched(
    cells: List[ScenarioCell], attempt: int = 0
) -> List[CellResult]:
    """Run a group of artifact-free cells through the batch kernel.

    All cells must share a platform and (cadence aside) config overrides
    (the grouping in :func:`batchable_cell_groups` guarantees it); each
    cell keeps its own trace, governor and simulation seeds, session
    duration and recording cadence -- mixed durations and cadences run as
    heterogeneous lanes under the masked kernel.  The batched
    device-population kernel is bit-identical per lane to the scalar
    :func:`execute_cell` path (pinned by the batch parity suite), so cached
    results from either route are interchangeable.

    Failure isolation matches the scalar path's granularity: any batch-level
    failure (including one diverging cell) falls back to running every cell
    of the group through :func:`execute_cell` individually, so a single bad
    configuration degrades throughput, never correctness.  An injected
    fault at the batch seam (keyed by the group's first fingerprint, with
    the orchestrator's ``attempt`` counter threaded through) takes the same
    fallback: the scalar re-runs classify and report their own failures.
    """
    started = time.perf_counter()
    tracer = active_tracer()
    span = (
        tracer.begin("cell_batch", cells=len(cells), attempt=attempt)
        if tracer is not None
        else None
    )
    ticks_before = metrics().counters.get("batch.device_ticks", 0.0)
    try:
        fault_point(SITE_EXECUTE_BATCH, cells[0].fingerprint(), attempt)
        from repro.sim.batch import BatchSimulation
        from repro.workloads.trace import TracePlayer

        platform = make_platform(cells[0].platform)
        traces = []
        governors = []
        configs = []
        for cell in cells:
            segments = [
                SessionSegment(app_name, duration_s)
                for app_name, duration_s in cell.workload.segments
            ]
            traces.append(
                record_session_trace(segments, platform=platform, seed=cell.trace_seed)
            )
            params = dict(cell.governor_params)
            if cell.governor in STOCHASTIC_GOVERNORS:
                params.setdefault("seed", cell.governor_seed)
            governors.append(make_governor(cell.governor, **params))
            configs.append(
                SimulationConfig(
                    refresh_hz=platform.display_refresh_hz,
                    duration_s=traces[-1].duration_s,
                    seed=cell.sim_seed,
                    **dict(cell.config_overrides),
                )
            )
        batch = BatchSimulation(platform, governors, configs)
        batch.run(
            [TracePlayer(trace) for trace in traces],
            duration_s=[trace.duration_s for trace in traces],
        )
        elapsed_s = (time.perf_counter() - started) / len(cells)
        results = []
        for index, cell in enumerate(cells):
            recorder = batch.device_recorder(index)
            session = SessionResult(
                governor_name=governors[index].name,
                app_names=list(traces[index].app_names()),
                recorder=recorder,
                summary=recorder.summary(),
            )
            results.append(
                CellResult(
                    cell=cell,
                    status="ok",
                    summary=summary_to_dict(session),
                    elapsed_s=elapsed_s,
                )
            )
        if tracer is not None:
            span.note("status", "ok")
            for cell in cells:
                # One child span per lane so the report's tree shows every
                # cell; the batch ran them jointly, so each carries the
                # amortised share of the batch's wall time as an attribute.
                child = tracer.begin(
                    "cell",
                    fingerprint=cell.fingerprint(),
                    label=cell.label(),
                    batched=True,
                )
                child.note("amortised_s", elapsed_s)
                child.note("status", "ok")
                tracer.end(child)
        return results
    except Exception:  # repro-lint: disable=REP008 -- each cell re-runs scalar and records its own traceback
        if span is not None:
            span.note("status", "fallback_scalar")
        return [execute_cell(cell, attempt=attempt) for cell in cells]
    finally:
        elapsed_total = time.perf_counter() - started
        device_ticks = metrics().counters.get("batch.device_ticks", 0.0) - ticks_before
        if elapsed_total > 0 and device_ticks > 0:
            metrics().set_gauge(
                "batch.device_ticks_per_s", device_ticks / elapsed_total
            )
        if tracer is not None:
            tracer.end(span)
            flush_task_metrics()


def batchable_cell_groups(
    pending: List[Tuple[int, ScenarioCell]], workers: int = 1
) -> Tuple[List[List[Tuple[int, ScenarioCell]]], List[Tuple[int, ScenarioCell]]]:
    """Partition pending cells into batch-kernel groups and scalar leftovers.

    Only artifact-free cells batch (trained and federated cells evaluate a
    frozen artifact resolved elsewhere), and only cells agreeing on
    platform and config overrides (recording cadence aside) can share one
    :class:`~repro.sim.batch.BatchSimulation`.  Session durations and
    ``record_every_n_ticks`` overrides may differ within a group: mixed
    cells run as heterogeneous lanes under the masked kernel.  Each group
    is split into up to ``workers`` chunks of at least two cells so a
    process pool still spreads a large homogeneous sweep across its
    workers; singleton leftovers run scalar.

    Returns ``(groups, rest)`` preserving the original ``(index, cell)``
    pairs; ``rest`` keeps its input order.
    """
    buckets: Dict[Any, List[Tuple[int, ScenarioCell]]] = {}
    rest: List[Tuple[int, ScenarioCell]] = []
    for index, cell in pending:
        if cell.training_spec() is not None or cell.fleet_spec() is not None:
            rest.append((index, cell))
            continue
        shared_overrides = tuple(
            (name, value)
            for name, value in cell.config_overrides
            if name != "record_every_n_ticks"
        )
        key = (cell.platform, shared_overrides)
        buckets.setdefault(key, []).append((index, cell))
    groups: List[List[Tuple[int, ScenarioCell]]] = []
    for bucket in buckets.values():
        if len(bucket) < 2:
            rest.extend(bucket)
            continue
        chunk_count = max(1, min(workers, len(bucket) // 2))
        size = -(-len(bucket) // chunk_count)  # ceil division
        for start in range(0, len(bucket), size):
            chunk = bucket[start : start + size]
            if len(chunk) >= 2:
                groups.append(chunk)
            else:
                rest.extend(chunk)
    rest.sort(key=lambda pair: pair[0])
    return groups, rest


def _training_error(fingerprint: str, spec: TrainingSpec, details: str) -> str:
    """One message format for "this cell's artifact failed to train"."""
    return (
        f"training failed for artifact {fingerprint} ({spec.label()}):\n{details}"
    )


def _fleet_error(fingerprint: str, spec: FleetSpec, details: str) -> str:
    """One message format for "this cell's fleet failed to train"."""
    return f"training failed for fleet {fingerprint} ({spec.label()}):\n{details}"


def default_artifact_dir(cache_dir: Optional[str]) -> Optional[str]:
    """Where a sweep with this result cache keeps its trained-agent artifacts."""
    if cache_dir is None:
        return None
    return os.path.join(cache_dir, "artifacts")


class ResultCache:
    """On-disk JSON cache of completed cells, keyed by cell fingerprint."""

    def __init__(self, directory: Optional[str]) -> None:
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    def _path(self, cell: ScenarioCell) -> Optional[str]:
        if self.directory is None:
            return None
        return os.path.join(self.directory, f"{cell.fingerprint()}.json")

    @staticmethod
    def _quarantine(path: str) -> None:
        """Move a corrupt entry aside as ``<path>.bad`` (best effort).

        Renaming instead of deleting keeps the evidence for post-mortems,
        frees the canonical path so the re-run can store a fresh result, and
        -- because merge/iteration only considers ``*.json`` names -- keeps
        the quarantined file out of every later cache operation.
        """
        try:
            os.replace(path, f"{path}.bad")
        except OSError:
            pass  # e.g. a racing runner already quarantined or replaced it

    def _read(self, cell: ScenarioCell) -> Tuple[Optional[CellResult], Optional[str]]:
        """Acceptance check without side effects: ``(result, corrupt_path)``.

        ``result`` is the accepted entry or ``None``; ``corrupt_path`` names
        the file when the miss was caused by unparseable content (so
        :meth:`load` can quarantine it) rather than by absence, semantic
        mismatch or a stale format.
        """
        path = self._path(cell)
        if path is None or not os.path.exists(path):
            return None, None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            result = CellResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None, path  # corrupt entry
        # Fingerprints are truncated hashes; verify the stored cell really is
        # semantically this cell before trusting the hit.  Comparing the
        # canonical payloads (the fingerprint hash inputs) applies the same
        # normalisation the fingerprint does -- matrix name excluded,
        # training variant reduced to its execution semantics -- in
        # JSON-canonical form: the cached payload already went through JSON
        # (tuples became lists), so the live one is normalised the same way.
        cached_payload = json.loads(json.dumps(result.cell.canonical_payload()))
        live_payload = json.loads(json.dumps(cell.canonical_payload()))
        if cached_payload != live_payload or not result.ok:
            return None, None
        if result.summary is None or "sample_stream_hash" not in result.summary:
            # Entry from before summaries carried the recorded-stream hash
            # (the distributed-merge parity currency).  The execution
            # semantics -- and therefore the fingerprint -- are unchanged,
            # so treat it as a stale-format miss: the cell recomputes once
            # and the rewritten entry carries the hash.
            return None, None
        return result, None

    def peek(self, cell: ScenarioCell) -> Optional[CellResult]:
        """Read-only form of :meth:`load`: same acceptance, no side effects.

        Used by inspection paths (``repro-sweep shard status``) that must
        agree with :meth:`load` about what counts as a completed cell but
        must not touch the directory -- not even to quarantine a torn file
        that might still be mid-copy.
        """
        result, _ = self._read(cell)
        return result

    def load(self, cell: ScenarioCell) -> Optional[CellResult]:
        """Return the cached result for ``cell``, or ``None`` on a miss.

        A truncated or otherwise corrupt entry (a torn copy, a filled disk
        mid-write on a non-atomic filesystem) is quarantined with a ``.bad``
        suffix and treated as a miss, so one bad file re-runs one cell
        instead of raising mid-sweep -- the same hardening the artifact
        store applies to its entries.
        """
        result, corrupt_path = self._read(cell)
        if corrupt_path is not None:
            self._quarantine(corrupt_path)
            metrics().inc("cache.quarantined")
        if result is None:
            metrics().inc("cache.miss")
            return None
        metrics().inc("cache.hit")
        result.cell = cell
        result.from_cache = True
        return result

    def store(self, result: CellResult) -> None:
        """Persist a successful result (errors are never cached)."""
        path = self._path(result.cell)
        if path is None or not result.ok:
            return
        atomic_write_json(path, result.to_dict())

    # -- merge support (used by repro.experiments.distributed) -------------------------

    #: Filename suffix of cache entries; everything else in the directory
    #: (``.bad`` quarantines, ``.tmp.<pid>`` staging files, the ``artifacts``
    #: subdirectory) is not a result entry.
    ENTRY_SUFFIX = ".json"

    def entry_paths(self) -> List[str]:
        """Paths of every result entry in the cache directory, sorted by name."""
        return list_entry_paths(self.directory, self.ENTRY_SUFFIX)

    @staticmethod
    def canonical_entry(data: Dict[str, Any]) -> Dict[str, Any]:
        """The content identity of one cache entry: everything but wall time.

        Two shards that executed the same cell produce entries identical in
        every field except ``elapsed_s`` (machine-dependent wall clock) and
        ``attempts`` (the retry lineage: which injected faults or broken
        pools a shard happened to weather, equally machine-dependent and
        equally unable to affect the result bytes).  The shard merge engine
        compares entries through this normalisation, so honest duplicates
        merge cleanly while any divergence in actual content -- summary
        values, status, the cell spec itself -- still fails the merge
        loudly.
        """
        normalised = dict(data)
        normalised.pop("elapsed_s", None)
        normalised.pop("attempts", None)
        return normalised


@dataclass
class SweepResult:
    """All cell results of one sweep, in the matrix's pre-registered order."""

    matrix: ScenarioMatrix
    results: List[CellResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> List[CellResult]:
        """Successful cells."""
        return [result for result in self.results if result.ok]

    @property
    def failures(self) -> List[CellResult]:
        """Failed cells (error results)."""
        return [result for result in self.results if not result.ok]

    @property
    def cached_count(self) -> int:
        """How many cells were served from the result cache."""
        return sum(1 for result in self.results if result.from_cache)

    def result_for(self, cell: ScenarioCell) -> CellResult:
        """The result of one specific cell (by fingerprint)."""
        wanted = cell.fingerprint()
        for result in self.results:
            if result.cell.fingerprint() == wanted:
                return result
        raise KeyError(f"no result for cell {cell.label()}")


class _PoolRestart(Exception):
    """Internal signal: the process pool must be torn down and rebuilt.

    Raised inside the pool event loop when the pool breaks (a worker died)
    or a watchdog deadline expires (a worker hung).  Carries the retry keys
    of the work that was in flight so :meth:`SweepRunner.run` can bump
    their attempt counters before resubmitting -- which is what lets a
    first-attempt-only injected crash or hang rule stop firing on the
    rebuilt pool.
    """

    def __init__(self, cause: str, keys: Tuple[str, ...]) -> None:
        super().__init__(cause)
        self.cause = cause
        self.keys = keys


class SweepRunner:
    """Runs every cell of a matrix, optionally across a process pool.

    ``max_workers=1`` (or a single pending cell) executes in-process through
    exactly the same :func:`execute_cell` path the pool workers use.

    Pretrained cells add a phase before cell execution: every distinct
    :class:`TrainingSpec` among the pending cells is resolved through the
    runner's :class:`ArtifactStore` -- loaded when stored, trained exactly
    once otherwise (across the same process pool the cells use) -- and each
    cell then evaluates its frozen artifact.  Federated cells resolve the
    same way through the :class:`FleetStore`: every distinct
    :class:`FleetSpec` trains once (its per-device jobs fanned out over the
    pool, its round-0 device training cached in the artifact store) or is
    served -- complete or as a same-lineage resume point -- from disk.
    ``artifact_dir`` defaults to ``<cache_dir>/artifacts`` so cached sweeps
    also reuse their agents and fleets.

    Fault tolerance: ``retry_policy`` bounds how often transient failures
    (classified by :func:`repro.reliability.retry.classify_exception`)
    re-run and how long the seeded backoff between attempts is;
    ``watchdog`` prices per-job wall-clock budgets from the shard cost
    model so hung workers are detected and their cells rescheduled; a
    broken or watchdog-expired pool is rebuilt up to ``max_pool_rebuilds``
    times before the remaining cells fall back to sequential in-process
    execution.  The defaults enable all three with conservative settings
    (two retries, 20x cost-model budgets with a 60 s floor, two rebuilds).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        artifact_dir: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        watchdog: Optional[WatchdogPolicy] = None,
        max_pool_rebuilds: int = 2,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be non-negative")
        self.max_workers = max_workers
        self.cache = ResultCache(cache_dir)
        if artifact_dir is None:
            artifact_dir = default_artifact_dir(cache_dir)
        self.artifacts = ArtifactStore(artifact_dir)
        self.fleets = FleetStore(artifact_dir)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        if watchdog is None:
            # Imported lazily: distributed imports this module at top level.
            from repro.experiments.distributed import DEFAULT_COST_MODEL

            watchdog = WatchdogPolicy(cost_model=DEFAULT_COST_MODEL)
        self.watchdog = watchdog
        self.max_pool_rebuilds = max_pool_rebuilds

    def run(
        self,
        matrix: ScenarioMatrix,
        progress: Optional[ProgressCallback] = None,
        cells: Optional[List[ScenarioCell]] = None,
    ) -> SweepResult:
        """Execute the matrix and return results in cell order.

        ``cells`` restricts execution to a subset of the matrix (in the given
        order) -- the distributed shard worker passes its shard's cells here
        so one shard runs through exactly the same scheduling, caching and
        artifact-resolution paths as a whole-matrix sweep.
        """
        if cells is None:
            cells = matrix.cells()
        total = len(cells)
        slots: List[Optional[CellResult]] = [None] * total
        done = 0

        tracer = active_tracer()
        sweep_span = None
        previous_root = None
        if tracer is not None:
            sweep_span = tracer.begin(
                "sweep", matrix=getattr(matrix, "name", None), cells=total
            )
            # Export the sweep span as the parent for worker-side spans; the
            # pool inherits the updated env value at creation below.
            previous_root = tracer.sink.root
            tracer.adopt_root(sweep_span)

        def deliver(index: int, result: CellResult) -> None:
            nonlocal done
            slots[index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

        try:
            pending: List[Tuple[int, ScenarioCell]] = []
            for index, cell in enumerate(cells):
                cached = self.cache.load(cell)
                if cached is not None:
                    deliver(index, cached)
                else:
                    pending.append((index, cell))

            workers = self.max_workers if self.max_workers is not None else os.cpu_count() or 1
            retry_states: Dict[str, RetryState] = {}
            rebuilds = 0
            while True:
                remaining = [
                    (index, cell) for index, cell in pending if slots[index] is None
                ]
                if not remaining:
                    break
                if workers <= 1 or len(remaining) <= 1 or rebuilds > self.max_pool_rebuilds:
                    # Either a sequential run was requested, or the pool broke
                    # more often than the rebuild budget allows.  Only the
                    # *remaining* cells run here: everything delivered before
                    # the last restart already sits in its slot and the cache.
                    self._run_sequential(remaining, deliver, retry_states)
                    break
                try:
                    with ProcessPoolExecutor(
                        max_workers=min(workers, len(remaining)),
                        initializer=mark_worker_process,
                    ) as pool:
                        try:
                            self._run_pool(pool, remaining, deliver, retry_states)
                        except (KeyboardInterrupt, _PoolRestart):
                            # Abandon queued and running work so the executor's
                            # __exit__ cannot block on a hung or dead worker.
                            # Every result delivered so far is already in the
                            # cache, so a re-run (or the rebuilt pool) resumes
                            # from exactly what completed.
                            self._abandon_pool(pool)
                            raise
                    break
                except _PoolRestart as restart:
                    rebuilds += 1
                    metrics().inc(
                        "watchdog.reschedules"
                        if restart.cause == "watchdog timeout"
                        else "pool.rebuilds"
                    )
                    emit_event(
                        "pool_restart", cause=restart.cause, cells=len(restart.keys)
                    )
                    for key in restart.keys:
                        state = retry_states.setdefault(key, RetryState())
                        state.record_failure(TRANSIENT, restart.cause, None)

            return SweepResult(
                matrix=matrix, results=[slot for slot in slots if slot is not None]
            )
        finally:
            if tracer is not None:
                sweep_span.note("done", done)
                tracer.end(sweep_span)
                tracer.set_root(previous_root)
                profiler = active_profiler()
                tracer.flush_metrics(
                    metrics().snapshot(),
                    profile=profiler.snapshot() if profiler is not None else None,
                )

    @staticmethod
    def _abandon_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting for hung or dead workers.

        Worker processes are terminated outright: they compute in memory
        and return results by pickle -- every store write happens in the
        orchestrator -- so killing them mid-cell cannot corrupt anything on
        disk.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            process.terminate()

    def _run_pool(
        self,
        pool: ProcessPoolExecutor,
        pending: List[Tuple[int, ScenarioCell]],
        deliver: Callable[[int, CellResult], None],
        retry_states: Dict[str, RetryState],
    ) -> None:
        """Pool scheduling: training jobs gate only their own dependent cells.

        Missing artifacts are submitted *first* (so training starts on the
        first free workers), artifact-free cells run concurrently with the
        training phase, already-stored artifacts dispatch their cells
        immediately, and each freshly trained artifact releases its cells the
        moment it lands -- no cell ever waits on an unrelated spec.

        Federated fleets resolve through the same event loop: stored fleets
        load up front (a same-lineage shallower fleet resumes), a missing
        fleet's round-0 device specs join the training queue (deduplicated
        against the cells' own specs and the artifact store), each
        continuation round fans one job per device across the pool as soon
        as the previous round's aggregation lands, and a fleet's cells
        dispatch the moment its artifact is captured.  Unrelated cells keep
        flowing while fleets train, and a fleet failure fails exactly its
        own cells.

        Fault tolerance: every submitted job carries its retry attempt
        counter and, when the watchdog can price it, a wall-clock deadline.
        A transient in-band failure (a classified error result or raised
        exception) resubmits the same job after seeded backoff; a broken
        pool or an expired deadline raises :class:`_PoolRestart` carrying
        the in-flight retry keys, and :meth:`run` rebuilds the pool around
        whatever this loop already delivered.
        """
        specs: Dict[str, TrainingSpec] = {}
        fleet_specs: Dict[str, FleetSpec] = {}
        spec_cells: Dict[str, ScenarioCell] = {}  # spec fp -> a cell needing it
        for _, cell in pending:
            spec = cell.training_spec()
            if spec is not None:
                fingerprint = spec.fingerprint()
                specs.setdefault(fingerprint, spec)
                spec_cells.setdefault(fingerprint, cell)
            fleet = cell.fleet_spec()
            if fleet is not None:
                fleet_specs.setdefault(fleet.fingerprint(), fleet)

        pending_futures: set = set()
        #: future -> (monotonic deadline, retry keys to bump on expiry).
        deadlines: Dict[Any, Tuple[float, Tuple[str, ...]]] = {}
        cell_futures: Dict[Any, Tuple[int, ScenarioCell, Optional[CellArtifact]]] = {}
        waiting: Dict[str, List[Tuple[int, ScenarioCell]]] = {}

        # -- fleet state -------------------------------------------------------
        fleets: Dict[str, FleetArtifact] = {}
        builds: Dict[str, FleetBuild] = {}
        failed_fleets: Dict[str, str] = {}
        fleet_waiting: Dict[str, List[Tuple[int, ScenarioCell]]] = {}
        device_artifacts: Dict[str, AgentArtifact] = {}
        device_needs: Dict[str, List[str]] = {}  # device spec fp -> fleet fps
        missing_devices: Dict[str, set] = {}  # fleet fp -> unresolved device fps
        round_futures: Dict[Any, Tuple[str, int, int, Tuple[Any, ...]]] = {}
        round_buffers: Dict[str, List[Optional[Dict[str, Any]]]] = {}
        batched_round_futures: Dict[Any, Tuple[str, int]] = {}
        batched_cell_futures: Dict[Any, List[Tuple[int, ScenarioCell]]] = {}
        use_batch_kernel = batch_kernel_available()

        def arm(future: Any, budget_s: Optional[float], keys: Tuple[str, ...]) -> None:
            """Give a future a watchdog deadline, when one can be priced."""
            if budget_s is not None:
                deadlines[future] = (monotonic_now() + budget_s, keys)

        def in_flight_keys() -> Tuple[str, ...]:
            """Retry keys of everything currently submitted to the pool.

            A broken pool voids every outstanding future at once, so all of
            them get their attempt counters bumped on restart -- which is
            what stops a first-attempt-only injected crash from re-firing
            and guarantees the rebuild loop converges.
            """
            keys = set()
            for _, in_flight_cell, _ in cell_futures.values():
                keys.add(in_flight_cell.fingerprint())
            for group in batched_cell_futures.values():
                keys.update(cell.fingerprint() for _, cell in group)
            keys.update(training_futures.values())
            for fleet_fp, round_index, device, _ in round_futures.values():
                keys.add(f"{fleet_fp}:r{round_index}:d{device}")
            keys.update(
                f"{fleet_fp}:r{round_index}"
                for fleet_fp, round_index in batched_round_futures.values()
            )
            return tuple(sorted(keys))

        for fleet_fingerprint, fleet_spec in fleet_specs.items():
            stored = self.fleets.load(fleet_spec)
            if stored is not None:
                self.fleets.reused_count += 1
                fleets[fleet_fingerprint] = stored
            else:
                builds[fleet_fingerprint] = FleetBuild(
                    fleet_spec, start=self.fleets.resume_candidate(fleet_spec)
                )

        # -- artifact resolution: cell specs + fleet round-0 device specs ------
        artifacts: Dict[str, AgentArtifact] = {}
        missing: Dict[str, TrainingSpec] = {}
        for fleet_fingerprint, build in builds.items():
            if not build.needs_round0:
                continue
            unresolved = set()
            for device_spec in build.device_specs():
                fingerprint = device_spec.fingerprint()
                if fingerprint in device_artifacts:
                    continue
                if fingerprint not in missing:
                    artifact = self.artifacts.resolve(device_spec)
                    if artifact is not None:
                        device_artifacts[fingerprint] = artifact
                        continue
                    missing[fingerprint] = device_spec
                unresolved.add(fingerprint)
                device_needs.setdefault(fingerprint, []).append(fleet_fingerprint)
            if unresolved:
                missing_devices[fleet_fingerprint] = unresolved
        for fingerprint, spec in specs.items():
            if fingerprint in missing:
                continue  # already queued as a fleet device spec
            if fingerprint in device_artifacts:
                artifacts[fingerprint] = device_artifacts[fingerprint]
                continue
            artifact = self.artifacts.resolve(spec)
            if artifact is not None:
                artifacts[fingerprint] = artifact
            else:
                missing[fingerprint] = spec

        training_futures: Dict[Any, str] = {}

        def submit_training(fingerprint: str, spec: TrainingSpec) -> None:
            attempt = self._attempt_of(fingerprint, retry_states)
            future = pool.submit(train_artifact, spec, attempt=attempt)
            training_futures[future] = fingerprint
            pending_futures.add(future)
            # Price the budget from a cell that needs this spec; a fleet
            # round-0 device spec has no such cell, so it only gets the flat
            # --cell-timeout override (if any).
            representative = spec_cells.get(fingerprint)
            budget = (
                self.watchdog.training_budget_s(representative)
                if representative is not None
                else self.watchdog.cell_timeout_s
            )
            arm(future, budget, (fingerprint,))

        for fingerprint, spec in missing.items():
            submit_training(fingerprint, spec)

        def submit_cell(
            index: int, cell: ScenarioCell, artifact: Optional[CellArtifact] = None
        ) -> None:
            if isinstance(artifact, FleetArtifact):
                # Don't serialise N device states per cell; evaluation only
                # reads the merged agent.
                artifact = artifact.evaluation_only()
            key = cell.fingerprint()
            future = pool.submit(
                execute_cell, cell, artifact, attempt=self._attempt_of(key, retry_states)
            )
            cell_futures[future] = (index, cell, artifact)
            pending_futures.add(future)
            arm(future, self.watchdog.cell_budget_s(cell), (key,))

        def submit_round_job(
            fleet_fingerprint: str, round_index: int, device: int, job: Tuple[Any, ...]
        ) -> None:
            key = f"{fleet_fingerprint}:r{round_index}:d{device}"
            future = pool.submit(
                train_device_round, *job, attempt=self._attempt_of(key, retry_states)
            )
            round_futures[future] = (fleet_fingerprint, round_index, device, tuple(job))
            pending_futures.add(future)
            arm(future, self.watchdog.cell_timeout_s, (key,))

        def fail_fleet(fleet_fingerprint: str, details: str) -> None:
            failed_fleets[fleet_fingerprint] = details
            round_buffers.pop(fleet_fingerprint, None)
            error = _fleet_error(
                fleet_fingerprint, fleet_specs[fleet_fingerprint], details
            )
            for index, cell in fleet_waiting.pop(fleet_fingerprint, ()):
                deliver(index, CellResult(cell=cell, status="error", error=error))

        def advance_fleet(fleet_fingerprint: str) -> None:
            """Submit the build's next round, or capture and release it."""
            build = builds[fleet_fingerprint]
            if build.finished:
                artifact = build.artifact()
                self.fleets.accept(artifact, resumed=build.resumed)
                fleets[fleet_fingerprint] = artifact
                for index, cell in fleet_waiting.pop(fleet_fingerprint, ()):
                    submit_cell(index, cell, artifact)
                return
            round_index, jobs = build.round_jobs()
            if use_batch_kernel and len(jobs) > 1:
                # One pool task steps the whole fleet through the batched
                # device-population kernel -- bit-identical to the
                # one-task-per-device fan-out (the federated parity tests
                # pin it), but the round costs one worker instead of N.
                future = pool.submit(train_device_rounds_batched, jobs)
                batched_round_futures[future] = (fleet_fingerprint, round_index)
                pending_futures.add(future)
                arm(
                    future,
                    self.watchdog.cell_timeout_s,
                    (f"{fleet_fingerprint}:r{round_index}",),
                )
                return
            round_buffers[fleet_fingerprint] = [None] * len(jobs)
            for device, job in enumerate(jobs):
                submit_round_job(fleet_fingerprint, round_index, device, job)

        # Kick off fleets that need no round-0 training: resumed lineages,
        # and fleets whose device artifacts were all served from the store.
        for fleet_fingerprint, build in builds.items():
            if not build.needs_round0:
                advance_fleet(fleet_fingerprint)
            elif fleet_fingerprint not in missing_devices:
                build.provide_round0(device_artifacts)
                advance_fleet(fleet_fingerprint)

        if use_batch_kernel:
            # Homogeneous artifact-free cells run through the batched
            # device-population kernel, chunked so the pool still spreads a
            # large sweep across its workers; everything else (trained,
            # federated, singleton cells) dispatches per cell below.
            cell_groups, dispatch = batchable_cell_groups(
                pending, workers=getattr(pool, "_max_workers", 1)
            )
            for group in cell_groups:
                group_cells = [cell for _, cell in group]
                attempt = max(
                    self._attempt_of(cell.fingerprint(), retry_states)
                    for cell in group_cells
                )
                future = pool.submit(execute_cells_batched, group_cells, attempt=attempt)
                batched_cell_futures[future] = group
                pending_futures.add(future)
                arm(
                    future,
                    self.watchdog.batch_budget_s(group_cells),
                    tuple(cell.fingerprint() for cell in group_cells),
                )
        else:
            dispatch = pending

        for index, cell in dispatch:
            fleet = cell.fleet_spec()
            if fleet is not None:
                fleet_fingerprint = fleet.fingerprint()
                if fleet_fingerprint in fleets:
                    submit_cell(index, cell, fleets[fleet_fingerprint])
                else:
                    # No fleet can have failed yet (nothing has completed),
                    # so every unresolved fleet's cells simply queue.
                    fleet_waiting.setdefault(fleet_fingerprint, []).append(
                        (index, cell)
                    )
                continue
            spec = cell.training_spec()
            if spec is None:
                submit_cell(index, cell)
                continue
            fingerprint = spec.fingerprint()
            if fingerprint in artifacts:
                submit_cell(index, cell, artifacts[fingerprint])
            else:
                waiting.setdefault(fingerprint, []).append((index, cell))

        while pending_futures:
            timeout = None
            if deadlines:
                timeout = max(
                    0.0,
                    min(deadline for deadline, _ in deadlines.values())
                    - monotonic_now(),
                )
            finished, _ = wait(
                pending_futures, timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not finished:
                # The wait timed out on a watchdog deadline.  Anything past
                # its budget is presumed hung: tear the pool down (run()
                # rebuilds it) rather than let one stuck worker stall the
                # sweep forever.
                now = monotonic_now()
                expired: set = set()
                for future, (deadline, keys) in deadlines.items():
                    if deadline <= now and not future.done():
                        expired.update(keys)
                if expired:
                    raise _PoolRestart("watchdog timeout", tuple(sorted(expired)))
                continue
            try:
                for future in finished:
                    pending_futures.discard(future)
                    deadlines.pop(future, None)
                    if future in training_futures:
                        fingerprint = training_futures.pop(future)
                        spec = missing[fingerprint]
                        try:
                            artifact = future.result()
                        except BrokenExecutor:
                            raise _PoolRestart(
                                "worker crash", in_flight_keys() + (fingerprint,)
                            )
                        except Exception as exc:
                            if self._note_exception(fingerprint, exc, retry_states):
                                self._backoff(
                                    fingerprint, retry_states[fingerprint].attempt
                                )
                                submit_training(fingerprint, spec)
                                continue
                            # The artifact failed to train for good: fail its
                            # cells, and any fleet whose round 0 needed it,
                            # without occupying workers (errors are never
                            # cached).
                            error = _training_error(
                                fingerprint, spec, traceback.format_exc()
                            )
                            for index, cell in waiting.pop(fingerprint, ()):
                                deliver(
                                    index,
                                    CellResult(
                                        cell=cell,
                                        status="error",
                                        error=error,
                                        error_kind=PERMANENT,
                                        error_type=type(exc).__name__,
                                    ),
                                )
                            for fleet_fingerprint in device_needs.pop(fingerprint, ()):
                                if fleet_fingerprint not in failed_fleets:
                                    fail_fleet(fleet_fingerprint, error)
                            continue
                        self.artifacts.accept(artifact)
                        device_artifacts[fingerprint] = artifact
                        for index, cell in waiting.pop(fingerprint, ()):
                            submit_cell(index, cell, artifact)
                        for fleet_fingerprint in device_needs.pop(fingerprint, ()):
                            if fleet_fingerprint in failed_fleets:
                                continue
                            unresolved = missing_devices[fleet_fingerprint]
                            unresolved.discard(fingerprint)
                            if not unresolved:
                                del missing_devices[fleet_fingerprint]
                                builds[fleet_fingerprint].provide_round0(
                                    device_artifacts
                                )
                                advance_fleet(fleet_fingerprint)
                    elif future in batched_cell_futures:
                        group = batched_cell_futures.pop(future)
                        try:
                            results = future.result()
                        except BrokenExecutor:
                            raise _PoolRestart(
                                "worker crash",
                                in_flight_keys()
                                + tuple(cell.fingerprint() for _, cell in group),
                            )
                        except Exception:  # repro-lint: disable=REP008 -- the group re-runs scalar below, where each cell records its own traceback
                            # Pool infrastructure failed for this job alone:
                            # retry the group's cells individually, restoring
                            # the scalar path's per-cell failure isolation.
                            results = None
                        if results is None or len(results) != len(group):
                            for index, cell in group:
                                submit_cell(index, cell)
                            continue
                        for (index, cell), result in zip(group, results):
                            self._settle_pool_result(
                                index, cell, None, result, deliver, retry_states,
                                submit_cell,
                            )
                    elif future in batched_round_futures:
                        fleet_fingerprint, round_index = batched_round_futures.pop(
                            future
                        )
                        if fleet_fingerprint in failed_fleets:
                            continue
                        try:
                            states = future.result()
                        except BrokenExecutor:
                            raise _PoolRestart(
                                "worker crash",
                                in_flight_keys()
                                + (f"{fleet_fingerprint}:r{round_index}",),
                            )
                        except Exception:
                            fail_fleet(fleet_fingerprint, traceback.format_exc())
                            continue
                        builds[fleet_fingerprint].finish_round(round_index, states)
                        advance_fleet(fleet_fingerprint)
                    elif future in round_futures:
                        fleet_fingerprint, round_index, device, job = round_futures.pop(
                            future
                        )
                        if fleet_fingerprint in failed_fleets:
                            continue  # a sibling device job already doomed it
                        key = f"{fleet_fingerprint}:r{round_index}:d{device}"
                        try:
                            state = future.result()
                        except BrokenExecutor:
                            raise _PoolRestart(
                                "worker crash", in_flight_keys() + (key,)
                            )
                        except Exception as exc:
                            if self._note_exception(key, exc, retry_states):
                                self._backoff(key, retry_states[key].attempt)
                                submit_round_job(
                                    fleet_fingerprint, round_index, device, job
                                )
                                continue
                            fail_fleet(fleet_fingerprint, traceback.format_exc())
                            continue
                        buffer = round_buffers[fleet_fingerprint]
                        buffer[device] = state
                        if all(entry is not None for entry in buffer):
                            del round_buffers[fleet_fingerprint]
                            builds[fleet_fingerprint].finish_round(round_index, buffer)
                            advance_fleet(fleet_fingerprint)
                    else:
                        index, cell, artifact = cell_futures.pop(future)
                        try:
                            result = future.result()
                        except BrokenExecutor:
                            raise _PoolRestart(
                                "worker crash",
                                in_flight_keys() + (cell.fingerprint(),),
                            )
                        except Exception as exc:
                            # execute_cell isolates workload errors itself;
                            # reaching here means the pool infrastructure
                            # failed for this one job (e.g. an unpicklable
                            # result).  Classify and settle it like any
                            # in-band failure.
                            result = CellResult(
                                cell=cell,
                                status="error",
                                error=traceback.format_exc(),
                                error_kind=classify_exception(exc),
                                error_type=type(exc).__name__,
                            )
                        self._settle_pool_result(
                            index, cell, artifact, result, deliver, retry_states,
                            submit_cell,
                        )
            except BrokenExecutor:
                # The pool died while a handler was resubmitting work.  The
                # job being handled may lose its bump this round; its fault
                # simply fires once more on the rebuilt pool and the next
                # restart bumps it -- the rebuild budget still bounds the
                # total.
                raise _PoolRestart("worker crash", in_flight_keys())

    def _run_sequential(
        self,
        remaining: List[Tuple[int, ScenarioCell]],
        deliver: Callable[[int, CellResult], None],
        retry_states: Dict[str, RetryState],
    ) -> None:
        """Finish ``remaining`` in-process (sequential runs and pool fallback).

        Transient failures retry in place with seeded backoff, carrying over
        any attempt counters accumulated during pool restarts (so injected
        faults that already fired in a doomed pool do not re-fire here).
        Injected crash faults raise instead of exiting -- the orchestrator
        process is never marked expendable -- so even a crash-heavy fault
        plan cannot take a sequential sweep down.
        """
        specs, fleet_specs = self._collect_specs(remaining)
        artifacts, errors = self.artifacts.ensure(specs.values())
        fleets, fleet_errors = self.fleets.ensure(
            fleet_specs.values(), artifacts=self.artifacts
        )
        if batch_kernel_available():
            groups, rest = batchable_cell_groups(remaining)
        else:
            groups, rest = [], remaining
        for group in groups:
            group_cells = [cell for _, cell in group]
            attempt = max(
                self._attempt_of(cell.fingerprint(), retry_states)
                for cell in group_cells
            )
            batch_results = execute_cells_batched(group_cells, attempt=attempt)
            for (index, cell), result in zip(group, batch_results):
                self._finish_sequential(
                    index,
                    cell,
                    result,
                    deliver,
                    retry_states,
                    rerun=lambda attempt, cell=cell: execute_cell(
                        cell, attempt=attempt
                    ),
                )
        for index, cell in rest:
            artifact, error = self._resolve_artifact(
                cell, artifacts, errors, fleets, fleet_errors
            )
            if error is not None:
                deliver(
                    index,
                    CellResult(
                        cell=cell, status="error", error=error, error_kind=PERMANENT
                    ),
                )
                continue
            result = execute_cell(
                cell,
                artifact=artifact,
                attempt=self._attempt_of(cell.fingerprint(), retry_states),
            )
            self._finish_sequential(
                index,
                cell,
                result,
                deliver,
                retry_states,
                rerun=lambda attempt, cell=cell, artifact=artifact: execute_cell(
                    cell, artifact=artifact, attempt=attempt
                ),
            )

    def _finish_sequential(
        self,
        index: int,
        cell: ScenarioCell,
        result: CellResult,
        deliver: Callable[[int, CellResult], None],
        retry_states: Dict[str, RetryState],
        rerun: Callable[[int], CellResult],
    ) -> None:
        """Deliver one in-process result, retrying transient failures in place."""
        key = cell.fingerprint()
        while True:
            if result.ok:
                self._attach_lineage(result, retry_states.get(key))
                self.cache.store(result)
                deliver(index, result)
                return
            if not self._note_failure(key, result, retry_states):
                self._finalize_error(result, retry_states[key])
                deliver(index, result)
                return
            self._backoff(key, retry_states[key].attempt)
            result = rerun(retry_states[key].attempt)

    # -- retry bookkeeping (shared by the pool and sequential paths) ------------------

    @staticmethod
    def _collect_specs(
        remaining: List[Tuple[int, ScenarioCell]],
    ) -> Tuple[Dict[str, TrainingSpec], Dict[str, FleetSpec]]:
        """The distinct training and fleet specs the remaining cells need."""
        specs: Dict[str, TrainingSpec] = {}
        fleet_specs: Dict[str, FleetSpec] = {}
        for _, cell in remaining:
            spec = cell.training_spec()
            if spec is not None:
                specs.setdefault(spec.fingerprint(), spec)
            fleet = cell.fleet_spec()
            if fleet is not None:
                fleet_specs.setdefault(fleet.fingerprint(), fleet)
        return specs, fleet_specs

    @staticmethod
    def _attempt_of(key: str, retry_states: Dict[str, RetryState]) -> int:
        """The attempt counter the next execution of ``key`` should carry."""
        state = retry_states.get(key)
        return 0 if state is None else state.attempt

    @staticmethod
    def _attach_lineage(result: CellResult, state: Optional[RetryState]) -> None:
        """Document survived failures on a success (no-op on clean runs)."""
        if state is not None and state.lineage:
            result.attempts = state.lineage_dicts()

    def _note_failure(
        self, key: str, result: CellResult, retry_states: Dict[str, RetryState]
    ) -> bool:
        """Account one failed attempt; ``True`` iff the caller should retry.

        A repeated identical traceback marks the failure deterministic --
        replaying it again cannot end differently -- and quarantines the
        cell immediately, regardless of remaining retry budget.
        """
        kind = result.error_kind or PERMANENT
        state = retry_states.setdefault(key, RetryState())
        repeated = state.record_failure(kind, result.error_type or "", result.error)
        retrying = (
            not repeated
            and kind == TRANSIENT
            # state.attempt now counts failures; retries used is one fewer.
            and self.retry_policy.should_retry(kind, state.attempt - 1)
        )
        self._note_retry_metrics(key, kind, state.attempt, retrying)
        return retrying

    def _note_exception(
        self, key: str, exc: BaseException, retry_states: Dict[str, RetryState]
    ) -> bool:
        """:meth:`_note_failure` for failures that arrived as raised exceptions."""
        kind = classify_exception(exc)
        state = retry_states.setdefault(key, RetryState())
        repeated = state.record_failure(
            kind, type(exc).__name__, traceback.format_exc()
        )
        retrying = (
            not repeated
            and kind == TRANSIENT
            # state.attempt now counts failures; retries used is one fewer.
            and self.retry_policy.should_retry(kind, state.attempt - 1)
        )
        self._note_retry_metrics(key, kind, state.attempt, retrying)
        return retrying

    @staticmethod
    def _note_retry_metrics(key: str, kind: str, attempt: int, retrying: bool) -> None:
        """Account one failed attempt in the obs layer (both failure paths)."""
        metrics().inc(f"retry.{kind}")
        if not retrying:
            metrics().inc("retry.quarantined" if kind != TRANSIENT else "retry.exhausted")
        emit_event(
            "retry", key=key, kind=kind, attempt=attempt, will_retry=retrying
        )

    @staticmethod
    def _finalize_error(result: CellResult, state: RetryState) -> None:
        """Stamp a no-more-retries error with its classification and lineage."""
        result.error_kind = PERMANENT
        result.attempts = state.lineage_dicts()

    def _backoff(self, key: str, attempt: int) -> None:
        """Sleep the seeded, capped backoff before retry ``attempt``."""
        delay = self.retry_policy.backoff_s(key, attempt)
        if delay > 0:
            time.sleep(delay)

    def _settle_pool_result(
        self,
        index: int,
        cell: ScenarioCell,
        artifact: Optional[CellArtifact],
        result: CellResult,
        deliver: Callable[[int, CellResult], None],
        retry_states: Dict[str, RetryState],
        submit_cell: Callable[..., None],
    ) -> None:
        """Deliver or retry one pool result (shared by cell and batch paths)."""
        key = cell.fingerprint()
        if result.ok:
            self._attach_lineage(result, retry_states.get(key))
            self.cache.store(result)
            deliver(index, result)
        elif self._note_failure(key, result, retry_states):
            self._backoff(key, retry_states[key].attempt)
            submit_cell(index, cell, artifact)
        else:
            self._finalize_error(result, retry_states[key])
            deliver(index, result)

    @staticmethod
    def _resolve_artifact(
        cell: ScenarioCell,
        artifacts: Dict[str, "AgentArtifact"],
        errors: Dict[str, str],
        fleets: Dict[str, "FleetArtifact"],
        fleet_errors: Dict[str, str],
    ) -> Tuple[Optional[CellArtifact], Optional[str]]:
        """The cell's trained artifact/fleet, or the training error that doomed it."""
        fleet = cell.fleet_spec()
        if fleet is not None:
            fingerprint = fleet.fingerprint()
            if fingerprint in fleet_errors:
                return None, _fleet_error(fingerprint, fleet, fleet_errors[fingerprint])
            return fleets.get(fingerprint), None
        spec = cell.training_spec()
        if spec is None:
            return None, None
        fingerprint = spec.fingerprint()
        if fingerprint in errors:
            return None, _training_error(fingerprint, spec, errors[fingerprint])
        return artifacts.get(fingerprint), None


def run_matrix(
    matrix: ScenarioMatrix,
    max_workers: Optional[int] = None,
    cache_dir: Optional[str] = None,
    artifact_dir: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    retry_policy: Optional[RetryPolicy] = None,
    watchdog: Optional[WatchdogPolicy] = None,
    max_pool_rebuilds: int = 2,
) -> SweepResult:
    """One-call convenience wrapper around :class:`SweepRunner`."""
    runner = SweepRunner(
        max_workers=max_workers,
        cache_dir=cache_dir,
        artifact_dir=artifact_dir,
        retry_policy=retry_policy,
        watchdog=watchdog,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    return runner.run(matrix, progress=progress)
