"""Lumped-RC thermal network for the simulated MPSoC.

The paper reads two temperatures: the big-cluster on-die sensor and a
"virtual" device temperature computed by a proprietary vendor formula from
battery and SoC sensors.  The simulator replaces the silicon with a standard
lumped thermal network: each cluster contributes heat to its own node, nodes
exchange heat through pairwise conductances, and every node leaks heat to the
ambient.  The device node has a large thermal capacitance (phone body and
battery) and is driven purely by coupling, which reproduces the slow-moving
"device temperature" the paper plots.

The network is integrated with forward Euler.  Mobile thermal time constants
are seconds to minutes, so the default sub-step of 10 ms is far below the
stability limit for any sane parameterisation; the integrator additionally
splits long steps to stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ThermalNodeSpec:
    """Static description of one node of the thermal network.

    Attributes
    ----------
    name:
        Node identifier; cluster nodes use the cluster name.
    capacitance_j_per_k:
        Thermal capacitance of the node in joules per kelvin.
    conductance_to_ambient_w_per_k:
        Direct conductance from the node to the ambient in watts per kelvin.
    """

    name: str
    capacitance_j_per_k: float
    conductance_to_ambient_w_per_k: float

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0:
            raise ValueError("thermal capacitance must be positive")
        if self.conductance_to_ambient_w_per_k < 0:
            raise ValueError("conductance to ambient must be non-negative")


@dataclass
class ThermalState:
    """Mutable snapshot of node temperatures in Celsius."""

    temperatures_c: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "ThermalState":
        """Return an independent copy of the state."""
        return ThermalState(dict(self.temperatures_c))

    def __getitem__(self, name: str) -> float:
        return self.temperatures_c[name]

    def __contains__(self, name: str) -> bool:
        return name in self.temperatures_c

    def max_temperature_c(self) -> float:
        """Hottest node temperature."""
        return max(self.temperatures_c.values())


class ThermalNetwork:
    """Lumped-RC thermal network with forward-Euler integration."""

    #: Maximum integration sub-step in seconds; longer steps are subdivided.
    MAX_SUBSTEP_S = 0.05

    def __init__(
        self,
        nodes: Mapping[str, ThermalNodeSpec],
        couplings: Mapping[Tuple[str, str], float],
        ambient_c: float = 21.0,
        initial_temperature_c: Optional[float] = None,
    ) -> None:
        if not nodes:
            raise ValueError("a thermal network needs at least one node")
        self._nodes: Dict[str, ThermalNodeSpec] = dict(nodes)
        self._couplings: Dict[Tuple[str, str], float] = {}
        for (a, b), g in couplings.items():
            if a not in self._nodes or b not in self._nodes:
                raise ValueError(f"coupling ({a}, {b}) references an unknown node")
            if a == b:
                raise ValueError("a node cannot be coupled to itself")
            if g < 0:
                raise ValueError("coupling conductance must be non-negative")
            key = (a, b) if a < b else (b, a)
            self._couplings[key] = self._couplings.get(key, 0.0) + g
        self.ambient_c = float(ambient_c)
        start = self.ambient_c if initial_temperature_c is None else float(initial_temperature_c)
        self._state = ThermalState({name: start for name in self._nodes})
        # Pre-compute adjacency for the integration loop.
        self._neighbours: Dict[str, List[Tuple[str, float]]] = {n: [] for n in self._nodes}
        for (a, b), g in self._couplings.items():
            self._neighbours[a].append((b, g))
            self._neighbours[b].append((a, g))

    # -- inspection -------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        """All node names."""
        return list(self._nodes)

    @property
    def state(self) -> ThermalState:
        """Current temperatures (live object; copy before mutating)."""
        return self._state

    def temperature_c(self, name: str) -> float:
        """Current temperature of ``name`` in Celsius."""
        return self._state.temperatures_c[name]

    def temperatures_c(self) -> Dict[str, float]:
        """Current temperatures of every node."""
        return dict(self._state.temperatures_c)

    # -- manipulation -----------------------------------------------------------

    def reset(self, temperature_c: Optional[float] = None) -> None:
        """Reset all node temperatures (to ambient by default)."""
        value = self.ambient_c if temperature_c is None else float(temperature_c)
        for name in self._nodes:
            self._state.temperatures_c[name] = value

    def set_temperature(self, name: str, temperature_c: float) -> None:
        """Force one node to a temperature (used by tests and scenarios)."""
        if name not in self._nodes:
            raise KeyError(name)
        self._state.temperatures_c[name] = float(temperature_c)

    def step(self, power_in_w: Mapping[str, float], dt_s: float) -> ThermalState:
        """Advance the network by ``dt_s`` seconds.

        Parameters
        ----------
        power_in_w:
            Heat injected into each node in watts.  Missing nodes receive no
            heat (e.g. the ``device`` node is usually driven only by
            conduction from the silicon nodes).
        dt_s:
            Time to advance, in seconds.  Internally subdivided so that each
            Euler sub-step is at most :data:`MAX_SUBSTEP_S`.

        Returns
        -------
        ThermalState
            The (live) state after the step.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if dt_s == 0:
            return self._state
        remaining = dt_s
        while remaining > 1e-12:
            sub = min(self.MAX_SUBSTEP_S, remaining)
            self._euler_substep(power_in_w, sub)
            remaining -= sub
        return self._state

    def _euler_substep(self, power_in_w: Mapping[str, float], dt_s: float) -> None:
        temps = self._state.temperatures_c
        derivatives: Dict[str, float] = {}
        for name, spec in self._nodes.items():
            t = temps[name]
            heat_w = float(power_in_w.get(name, 0.0))
            # Heat loss to ambient.
            heat_w -= spec.conductance_to_ambient_w_per_k * (t - self.ambient_c)
            # Conduction to neighbouring nodes.
            for other, g in self._neighbours[name]:
                heat_w -= g * (t - temps[other])
            derivatives[name] = heat_w / spec.capacitance_j_per_k
        for name, dtemp in derivatives.items():
            temps[name] += dtemp * dt_s
            # Physical floor: without an active cooler nothing drops below ambient.
            if temps[name] < self.ambient_c:
                temps[name] = self.ambient_c

    # -- analysis helpers --------------------------------------------------------

    def steady_state(
        self, power_in_w: Mapping[str, float], tolerance_c: float = 0.01, max_time_s: float = 3600.0
    ) -> ThermalState:
        """Integrate with constant power until the network settles.

        Returns a copy of the settled state and restores the original state,
        so the call has no side effect on the live simulation.
        """
        saved = self._state.copy()
        try:
            elapsed = 0.0
            step = 1.0
            while elapsed < max_time_s:
                before = dict(self._state.temperatures_c)
                self.step(power_in_w, step)
                elapsed += step
                delta = max(
                    abs(self._state.temperatures_c[n] - before[n]) for n in self._nodes
                )
                if delta < tolerance_c:
                    break
            return self._state.copy()
        finally:
            self._state = saved
            # Rebuild neighbour temps reference (state dict replaced).
