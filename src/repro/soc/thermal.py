"""Lumped-RC thermal network for the simulated MPSoC.

The paper reads two temperatures: the big-cluster on-die sensor and a
"virtual" device temperature computed by a proprietary vendor formula from
battery and SoC sensors.  The simulator replaces the silicon with a standard
lumped thermal network: each cluster contributes heat to its own node, nodes
exchange heat through pairwise conductances, and every node leaks heat to the
ambient.  The device node has a large thermal capacitance (phone body and
battery) and is driven purely by coupling, which reproduces the slow-moving
"device temperature" the paper plots.

The network is integrated with forward Euler.  Mobile thermal time constants
are seconds to minutes, so the default sub-step of 10 ms is far below the
stability limit for any sane parameterisation; the integrator additionally
splits long steps to stay stable.

Hot-loop kernel
---------------
The network is *compiled* at construction into an index-based representation:
node order is frozen into flat parallel lists (temperatures, capacitances,
ambient conductances) and the coupling graph into per-node ``(index, g)``
neighbour tuples.  :meth:`ThermalNetwork.step_flat` advances that
representation with zero per-substep allocation, which is what the simulation
engine drives 60 times per simulated second.  The kernel iterates nodes and
neighbours in exactly the order the original dict-based stepper did and keeps
every float operation (including the division by the capacitance) in the same
sequence, so integration results are bit-identical to the reference stepper
-- a guarantee the golden-trace and hypothesis suites pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ThermalNodeSpec:
    """Static description of one node of the thermal network.

    Attributes
    ----------
    name:
        Node identifier; cluster nodes use the cluster name.
    capacitance_j_per_k:
        Thermal capacitance of the node in joules per kelvin.
    conductance_to_ambient_w_per_k:
        Direct conductance from the node to the ambient in watts per kelvin.
    """

    name: str
    capacitance_j_per_k: float
    conductance_to_ambient_w_per_k: float

    def __post_init__(self) -> None:
        if self.capacitance_j_per_k <= 0:
            raise ValueError("thermal capacitance must be positive")
        if self.conductance_to_ambient_w_per_k < 0:
            raise ValueError("conductance to ambient must be non-negative")


@dataclass
class ThermalState:
    """Snapshot of node temperatures in Celsius."""

    temperatures_c: Dict[str, float] = field(default_factory=dict)

    def copy(self) -> "ThermalState":
        """Return an independent copy of the state."""
        return ThermalState(dict(self.temperatures_c))

    def __getitem__(self, name: str) -> float:
        return self.temperatures_c[name]

    def __contains__(self, name: str) -> bool:
        return name in self.temperatures_c

    def max_temperature_c(self) -> float:
        """Hottest node temperature."""
        return max(self.temperatures_c.values())


class ThermalNetwork:
    """Lumped-RC thermal network with forward-Euler integration.

    Internally the live state is a flat list of temperatures indexed by node
    (see module docstring); the mapping-based API converts at the boundary.
    """

    #: Maximum integration sub-step in seconds; longer steps are subdivided.
    MAX_SUBSTEP_S = 0.05

    def __init__(
        self,
        nodes: Mapping[str, ThermalNodeSpec],
        couplings: Mapping[Tuple[str, str], float],
        ambient_c: float = 21.0,
        initial_temperature_c: Optional[float] = None,
    ) -> None:
        if not nodes:
            raise ValueError("a thermal network needs at least one node")
        self._nodes: Dict[str, ThermalNodeSpec] = dict(nodes)
        self._couplings: Dict[Tuple[str, str], float] = {}
        for (a, b), g in couplings.items():
            if a not in self._nodes or b not in self._nodes:
                raise ValueError(f"coupling ({a}, {b}) references an unknown node")
            if a == b:
                raise ValueError("a node cannot be coupled to itself")
            if g < 0:
                raise ValueError("coupling conductance must be non-negative")
            key = (a, b) if a < b else (b, a)
            self._couplings[key] = self._couplings.get(key, 0.0) + g
        self.ambient_c = float(ambient_c)
        start = self.ambient_c if initial_temperature_c is None else float(initial_temperature_c)
        # Adjacency in registration order (kept for inspection and because the
        # kernel must iterate neighbours in exactly this order).
        self._neighbours: Dict[str, List[Tuple[str, float]]] = {n: [] for n in self._nodes}
        for (a, b), g in self._couplings.items():
            self._neighbours[a].append((b, g))
            self._neighbours[b].append((a, g))
        # -- compiled index-based representation --------------------------------
        self._names: List[str] = list(self._nodes)
        self._name_index: Dict[str, int] = {n: i for i, n in enumerate(self._names)}
        index = self._name_index
        self._cap: List[float] = [self._nodes[n].capacitance_j_per_k for n in self._names]
        self._g_amb: List[float] = [
            self._nodes[n].conductance_to_ambient_w_per_k for n in self._names
        ]
        #: Per-node neighbour edges as ``(other_index, conductance)`` tuples,
        #: in the same order as ``self._neighbours[name]``.
        self._nbrs: List[Tuple[Tuple[int, float], ...]] = [
            tuple((index[other], g) for other, g in self._neighbours[n])
            for n in self._names
        ]
        #: Flattened edge list ``(i, j, g)`` (each undirected coupling once).
        self.edges: Tuple[Tuple[int, int, float], ...] = tuple(
            (index[a], index[b], g) for (a, b), g in self._couplings.items()
        )
        self._temps: List[float] = [start] * len(self._names)
        # Preallocated scratch buffers for the zero-allocation kernel.
        self._derivs: List[float] = [0.0] * len(self._names)
        self._heat: List[float] = [0.0] * len(self._names)

    # -- inspection -------------------------------------------------------------

    @property
    def node_names(self) -> List[str]:
        """All node names."""
        return list(self._names)

    def node_index(self, name: str) -> int:
        """Index of ``name`` in the compiled flat representation."""
        return self._name_index[name]

    @property
    def state(self) -> ThermalState:
        """Current temperatures as a :class:`ThermalState` snapshot."""
        return ThermalState(dict(zip(self._names, self._temps)))

    def temperature_c(self, name: str) -> float:
        """Current temperature of ``name`` in Celsius."""
        return self._temps[self._name_index[name]]

    def temperatures_c(self) -> Dict[str, float]:
        """Current temperatures of every node."""
        return dict(zip(self._names, self._temps))

    # -- manipulation -----------------------------------------------------------

    def reset(self, temperature_c: Optional[float] = None) -> None:
        """Reset all node temperatures (to ambient by default)."""
        value = self.ambient_c if temperature_c is None else float(temperature_c)
        temps = self._temps
        for i in range(len(temps)):
            temps[i] = value

    def set_temperature(self, name: str, temperature_c: float) -> None:
        """Force one node to a temperature (used by tests and scenarios)."""
        if name not in self._name_index:
            raise KeyError(name)
        self._temps[self._name_index[name]] = float(temperature_c)

    def step(self, power_in_w: Mapping[str, float], dt_s: float) -> ThermalState:
        """Advance the network by ``dt_s`` seconds.

        Parameters
        ----------
        power_in_w:
            Heat injected into each node in watts.  Missing nodes receive no
            heat (e.g. the ``device`` node is usually driven only by
            conduction from the silicon nodes).
        dt_s:
            Time to advance, in seconds.  Internally subdivided so that each
            Euler sub-step is at most :data:`MAX_SUBSTEP_S`.

        Returns
        -------
        ThermalState
            A snapshot of the state after the step.
        """
        if dt_s < 0:
            raise ValueError("dt_s must be non-negative")
        if dt_s == 0:
            return self.state
        heat = self._heat
        for i, name in enumerate(self._names):
            heat[i] = float(power_in_w.get(name, 0.0))
        self.step_flat(heat, dt_s)
        return self.state

    def step_flat(self, heat_in_w: List[float], dt_s: float) -> None:
        """Advance the network by ``dt_s`` with heat given in node-index order.

        This is the zero-allocation hot-loop entry point: ``heat_in_w`` is a
        flat sequence aligned with the compiled node order (callers typically
        reuse one preallocated buffer).  Long steps are subdivided exactly as
        :meth:`step` does.
        """
        remaining = dt_s
        max_sub = self.MAX_SUBSTEP_S
        while remaining > 1e-12:
            sub = min(max_sub, remaining)
            self._euler_substep(heat_in_w, sub)
            remaining -= sub

    def step_flat_batch(self, temps_2d, heat_in_2d, dt_s: float) -> None:
        """Batched :meth:`step_flat` over a device axis.

        ``temps_2d`` and ``heat_in_2d`` are ``(nodes, devices)`` float64
        arrays; lane ``d`` of every row is one independent device.  The
        sub-step subdivision is identical to :meth:`step_flat` and every lane
        sees exactly the scalar kernel's float-operation sequence, so each
        device's temperatures stay bit-identical to a scalar run.
        """
        remaining = dt_s
        max_sub = self.MAX_SUBSTEP_S
        while remaining > 1e-12:
            sub = min(max_sub, remaining)
            self.euler_substep_batch(temps_2d, heat_in_2d, sub)
            remaining -= sub

    def euler_substep_batch(self, temps_2d, heat_in_2d, dt_s: float) -> None:
        """Batched :meth:`_euler_substep`: one Euler sub-step for every lane.

        Elementwise IEEE-754 arithmetic over the device axis keeps each lane's
        operation sequence identical to the scalar kernel (ambient loss, then
        neighbours in coupling registration order, then the division by the
        capacitance), so results are bit-identical per device.
        """
        import numpy as np

        ambient = self.ambient_c
        g_amb = self._g_amb
        cap = self._cap
        nbrs = self._nbrs
        n = len(self._names)
        derivs = [None] * n
        for i in range(n):
            t = temps_2d[i]
            heat_w = heat_in_2d[i] - g_amb[i] * (t - ambient)
            for j, g in nbrs[i]:
                heat_w = heat_w - g * (t - temps_2d[j])
            derivs[i] = heat_w / cap[i]
        for i in range(n):
            value = temps_2d[i] + derivs[i] * dt_s
            # Same physical floor as the scalar kernel (lanes at exactly the
            # ambient value are untouched either way).
            temps_2d[i] = np.where(value < ambient, ambient, value)

    def _euler_substep(self, heat_in_w: List[float], dt_s: float) -> None:
        # The compiled kernel: identical float-operation sequence to the
        # reference dict stepper (ambient loss, then neighbours in coupling
        # registration order, then the division by the capacitance).
        temps = self._temps
        derivs = self._derivs
        ambient = self.ambient_c
        g_amb = self._g_amb
        cap = self._cap
        nbrs = self._nbrs
        for i in range(len(temps)):
            t = temps[i]
            heat_w = heat_in_w[i]
            # Heat loss to ambient.
            heat_w -= g_amb[i] * (t - ambient)
            # Conduction to neighbouring nodes.
            for j, g in nbrs[i]:
                heat_w -= g * (t - temps[j])
            derivs[i] = heat_w / cap[i]
        for i in range(len(temps)):
            value = temps[i] + derivs[i] * dt_s
            # Physical floor: without an active cooler nothing drops below ambient.
            if value < ambient:
                value = ambient
            temps[i] = value

    # -- analysis helpers --------------------------------------------------------

    def steady_state(
        self, power_in_w: Mapping[str, float], tolerance_c: float = 0.01, max_time_s: float = 3600.0
    ) -> ThermalState:
        """Integrate with constant power until the network settles.

        Returns a copy of the settled state and restores the original state,
        so the call has no side effect on the live simulation.
        """
        saved = list(self._temps)
        try:
            elapsed = 0.0
            step = 1.0
            temps = self._temps
            while elapsed < max_time_s:
                before = list(temps)
                self.step(power_in_w, step)
                elapsed += step
                delta = max(
                    abs(temps[i] - before[i]) for i in range(len(temps))
                )
                if delta < tolerance_c:
                    break
            return self.state
        finally:
            self._temps[:] = saved
