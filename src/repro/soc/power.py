"""Analytic power model for the simulated MPSoC.

The Galaxy Note 9 exposes power through on-board fuel-gauge and rail sensors;
the paper reads "power consumption" as one of the ``Next`` agent's state
inputs.  The simulator replaces the sensors with the classic CMOS power
decomposition:

* dynamic power ``P_dyn = C_eff * f * V^2 * u`` per busy core, where ``u`` is
  the core's utilisation over the evaluation interval,
* leakage power ``P_leak = I_leak(T) * V`` per core, with an exponential
  temperature dependence, and
* a constant rest-of-platform floor (display, DRAM, modem, sensors).

The coefficients live in :class:`repro.soc.cluster.ClusterSpec` so that each
platform can be calibrated independently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.soc.cluster import Cluster, ClusterSpec

#: Reference junction temperature (Celsius) at which the leakage coefficient
#: of a cluster spec is defined.
LEAKAGE_REFERENCE_TEMPERATURE_C = 25.0


@dataclass(frozen=True)
class PowerBreakdown:
    """Power of the SoC at one instant, decomposed per cluster.

    Attributes
    ----------
    dynamic_w:
        Dynamic (switching) power per cluster in watts.
    leakage_w:
        Static (leakage) power per cluster in watts.
    rest_of_platform_w:
        Constant platform floor in watts.
    """

    dynamic_w: Mapping[str, float]
    leakage_w: Mapping[str, float]
    rest_of_platform_w: float

    def cluster_total_w(self, name: str) -> float:
        """Total power of one cluster (dynamic + leakage) in watts."""
        return self.dynamic_w[name] + self.leakage_w[name]

    @property
    def clusters_total_w(self) -> float:
        """Total power of all clusters in watts."""
        return sum(self.dynamic_w.values()) + sum(self.leakage_w.values())

    @property
    def total_w(self) -> float:
        """Total platform power (clusters + rest of platform) in watts."""
        return self.clusters_total_w + self.rest_of_platform_w


class ClusterPowerModel:
    """Power model of a single cluster."""

    def __init__(self, spec: ClusterSpec) -> None:
        self.spec = spec

    def dynamic_power_w(self, frequency_mhz: float, voltage_v: float, utilisation: float) -> float:
        """Dynamic power of the whole cluster in watts.

        ``utilisation`` is the fraction of cluster capacity that was busy; it
        is interpreted as the busy fraction spread across the cores of the
        cluster, so a utilisation of 0.25 on a four core cluster is one fully
        busy core.
        """
        utilisation = min(1.0, max(0.0, utilisation))
        # capacitance_nf [nF] * f [MHz] * 1e6 [Hz/MHz] * 1e-9 [F/nF] = 1e-3 C*f
        # so power in watts is C*f*V^2 * 1e-3 per fully-busy core.
        per_core_full = self.spec.capacitance_nf * frequency_mhz * voltage_v ** 2 * 1e-3
        return per_core_full * self.spec.core_count * utilisation

    def leakage_power_w(self, voltage_v: float, temperature_c: float) -> float:
        """Leakage power of the whole cluster in watts at ``temperature_c``."""
        delta_t = temperature_c - LEAKAGE_REFERENCE_TEMPERATURE_C
        scale = math.exp(self.spec.leakage_temp_coeff * delta_t)
        return self.spec.leakage_w_per_v * voltage_v * self.spec.core_count * scale

    def total_power_w(
        self, frequency_mhz: float, voltage_v: float, utilisation: float, temperature_c: float
    ) -> float:
        """Total cluster power (dynamic + leakage) in watts."""
        return self.dynamic_power_w(frequency_mhz, voltage_v, utilisation) + self.leakage_power_w(
            voltage_v, temperature_c
        )

    def max_power_w(self, opp_index: int, temperature_c: float = 85.0) -> float:
        """Power at a given OPP with the cluster fully busy (worst case)."""
        freq = self.spec.opp_table.frequency_at(opp_index)
        volt = self.spec.opp_table.voltage_at(opp_index)
        return self.total_power_w(freq, volt, 1.0, temperature_c)


class SocPowerModel:
    """Power model of the full SoC (all clusters plus the platform floor)."""

    def __init__(
        self,
        cluster_specs: Mapping[str, ClusterSpec],
        rest_of_platform_power_w: float = 0.0,
    ) -> None:
        if rest_of_platform_power_w < 0:
            raise ValueError("rest_of_platform_power_w must be non-negative")
        self._models: Dict[str, ClusterPowerModel] = {
            name: ClusterPowerModel(spec) for name, spec in cluster_specs.items()
        }
        self.rest_of_platform_power_w = rest_of_platform_power_w

    def cluster_model(self, name: str) -> ClusterPowerModel:
        """Return the per-cluster power model for ``name``."""
        return self._models[name]

    def compile_coefficients(
        self, cluster_names: Sequence[str]
    ) -> Tuple[Tuple[float, int, float, float], ...]:
        """Per-cluster power coefficient tuples in ``cluster_names`` order.

        Each entry is ``(capacitance_nf, core_count, leakage_w_per_v,
        leakage_temp_coeff)`` -- everything :meth:`evaluate_flat` needs, so
        the hot loop never touches the spec objects.
        """
        coeffs = []
        for name in cluster_names:
            spec = self._models[name].spec
            coeffs.append(
                (
                    spec.capacitance_nf,
                    spec.core_count,
                    spec.leakage_w_per_v,
                    spec.leakage_temp_coeff,
                )
            )
        return tuple(coeffs)

    def evaluate_flat(
        self,
        clusters: Sequence[Cluster],
        coefficients: Sequence[Tuple[float, int, float, float]],
        temperatures_c: Sequence[float],
        dynamic_out: List[float],
        leakage_out: List[float],
    ) -> None:
        """Compiled-kernel power evaluation over index-aligned flat sequences.

        ``clusters``, ``coefficients`` and ``temperatures_c`` are parallel
        (one entry per cluster, in compile order); results are written into
        the preallocated ``dynamic_out``/``leakage_out`` buffers so the per-
        tick path allocates nothing.  The float operation sequence replicates
        :meth:`ClusterPowerModel.dynamic_power_w` and
        :meth:`ClusterPowerModel.leakage_power_w` exactly, so the outputs are
        bit-identical to :meth:`evaluate` for the same inputs.
        """
        exp = math.exp
        ref_t = LEAKAGE_REFERENCE_TEMPERATURE_C
        for k in range(len(clusters)):
            cluster = clusters[k]
            cap_nf, cores, leak_w_per_v, leak_coeff = coefficients[k]
            index = cluster._current_index
            frequency = cluster._freqs[index]
            voltage = cluster._volts[index]
            utilisation = min(1.0, max(0.0, cluster._utilisation))
            per_core_full = cap_nf * frequency * voltage ** 2 * 1e-3
            dynamic_out[k] = per_core_full * cores * utilisation
            delta_t = temperatures_c[k] - ref_t
            scale = exp(leak_coeff * delta_t)
            leakage_out[k] = leak_w_per_v * voltage * cores * scale

    def compile_batch_tables(
        self, clusters: Sequence[Cluster]
    ) -> Tuple[Tuple[tuple, tuple, float], ...]:
        """Per-cluster OPP-indexed power tables for :meth:`evaluate_flat_batch`.

        Each entry is ``(dynamic_coeff_per_opp, leakage_base_per_opp,
        leakage_temp_coeff)``.  The per-OPP coefficients are precomputed with
        plain Python floats through exactly the scalar kernel's expressions
        (``(cap_nf * f * v ** 2 * 1e-3) * cores`` and
        ``(leak_w_per_v * v) * cores``), so indexing a table reproduces the
        scalar partial products bit for bit.
        """
        import numpy as np

        tables = []
        for cluster in clusters:
            spec = self._models[cluster.name].spec
            cap_nf = spec.capacitance_nf
            cores = spec.core_count
            leak_w_per_v = spec.leakage_w_per_v
            dynamic_coeff = np.array(
                [
                    cap_nf * frequency * voltage ** 2 * 1e-3 * cores
                    for frequency, voltage in zip(cluster._freqs, cluster._volts)
                ],
                dtype=np.float64,
            )
            leakage_base = np.array(
                [leak_w_per_v * voltage * cores for voltage in cluster._volts],
                dtype=np.float64,
            )
            tables.append((dynamic_coeff, leakage_base, spec.leakage_temp_coeff))
        return tuple(tables)

    def evaluate_flat_batch(
        self,
        tables: Sequence[Tuple[tuple, tuple, float]],
        current_index_rows,
        utilisation_rows,
        node_temperature_rows,
        cluster_node_index: Sequence[int],
        dynamic_out,
        leakage_out,
    ) -> None:
        """Batched :meth:`evaluate_flat` over a device axis.

        All row arguments are ``(clusters, devices)``-shaped (temperatures are
        ``(nodes, devices)``); lane ``d`` is one device.  Per lane the float
        sequence matches :meth:`evaluate_flat` exactly: the dynamic partial
        product and the leakage base come from the precomputed per-OPP tables
        (same Python-float products, see :meth:`compile_batch_tables`) and the
        leakage exponential is evaluated with :func:`math.exp` per lane --
        ``numpy.exp`` is *not* guaranteed to round identically to libm, so it
        must not be used here.
        """
        import numpy as np

        exp = math.exp
        ref_t = LEAKAGE_REFERENCE_TEMPERATURE_C
        for k in range(len(tables)):
            dynamic_coeff, leakage_base, leak_coeff = tables[k]
            index = current_index_rows[k]
            utilisation = utilisation_rows[k]
            utilisation = np.minimum(1.0, np.maximum(0.0, utilisation))
            dynamic_out[k] = dynamic_coeff[index] * utilisation
            delta_t = node_temperature_rows[cluster_node_index[k]] - ref_t
            argument = leak_coeff * delta_t
            scale = np.fromiter(
                map(exp, argument.tolist()),
                dtype=np.float64,
                count=argument.shape[0],
            )
            leakage_out[k] = leakage_base[index] * scale

    def evaluate(
        self,
        clusters: Mapping[str, Cluster],
        temperatures_c: Mapping[str, float],
    ) -> PowerBreakdown:
        """Evaluate power for the current state of each cluster.

        Parameters
        ----------
        clusters:
            Live cluster objects carrying frequency, voltage and utilisation.
        temperatures_c:
            Current junction temperature of each cluster's thermal node.

        Returns
        -------
        PowerBreakdown
            Per-cluster dynamic and leakage power plus the platform floor.
        """
        dynamic: Dict[str, float] = {}
        leakage: Dict[str, float] = {}
        for name, cluster in clusters.items():
            model = self._models[name]
            dynamic[name] = model.dynamic_power_w(
                cluster.current_frequency_mhz,
                cluster.current_voltage_v,
                cluster.utilisation,
            )
            leakage[name] = model.leakage_power_w(
                cluster.current_voltage_v, temperatures_c[name]
            )
        return PowerBreakdown(
            dynamic_w=dynamic,
            leakage_w=leakage,
            rest_of_platform_w=self.rest_of_platform_power_w,
        )

    def peak_power_w(self, temperature_c: float = 85.0) -> float:
        """Worst-case platform power: every cluster at top OPP, fully busy."""
        total = self.rest_of_platform_power_w
        for model in self._models.values():
            top = len(model.spec.opp_table) - 1
            total += model.max_power_w(top, temperature_c)
        return total

    def min_active_power_w(self, temperature_c: float = 30.0) -> float:
        """Best-case active power: every cluster at its lowest OPP and idle."""
        total = self.rest_of_platform_power_w
        for model in self._models.values():
            freq = model.spec.opp_table.frequency_at(0)
            volt = model.spec.opp_table.voltage_at(0)
            total += model.total_power_w(freq, volt, 0.0, temperature_c)
        return total
