"""MPSoC substrate: clusters, DVFS, power model, thermal model and sensors.

This package simulates the hardware side of the paper's testbed -- a Samsung
Galaxy Note 9 built around the Exynos 9810 MPSoC -- at the level of detail the
``Next`` agent can observe and actuate:

* per-cluster operating performance points (OPPs) with the exact frequency
  tables reported in Section III-A of the paper,
* cluster-wise DVFS with ``maxfreq``/``minfreq`` limits (the only actuation
  knob the agent uses),
* an analytic power model (dynamic switching power plus temperature dependent
  leakage),
* a lumped-RC thermal network with a big-cluster sensor and a "virtual"
  device sensor, and
* sensor sampling with configurable period and noise.
"""

from repro.soc.frequency import FrequencyPoint, OppTable
from repro.soc.cluster import Cluster, ClusterKind
from repro.soc.platform import (
    PLATFORM_LIBRARY,
    PlatformSpec,
    exynos9810,
    generic_two_cluster_soc,
    make_platform,
    register_platform,
)
from repro.soc.power import ClusterPowerModel, PowerBreakdown, SocPowerModel
from repro.soc.thermal import ThermalNetwork, ThermalNodeSpec, ThermalState
from repro.soc.sensors import PowerSensor, SensorHub, TemperatureSensor
from repro.soc.soc import SocSimulator, SocTelemetry

__all__ = [
    "FrequencyPoint",
    "OppTable",
    "Cluster",
    "ClusterKind",
    "PlatformSpec",
    "exynos9810",
    "generic_two_cluster_soc",
    "ClusterPowerModel",
    "PowerBreakdown",
    "SocPowerModel",
    "ThermalNetwork",
    "ThermalNodeSpec",
    "ThermalState",
    "PowerSensor",
    "TemperatureSensor",
    "SensorHub",
    "SocSimulator",
    "SocTelemetry",
]
