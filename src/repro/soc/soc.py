"""Facade tying clusters, power model, thermal network and sensors together.

:class:`SocSimulator` is the single object the simulation engine talks to.
Per simulation tick the engine:

1. tells each cluster its utilisation for the tick (computed by the frame
   pipeline / workload model),
2. calls :meth:`SocSimulator.step` with the tick length, which evaluates the
   power model, injects the heat into the thermal network and advances it,
3. reads :meth:`SocSimulator.sample_sensors` whenever a governor or the agent
   needs an observation.

Frequency changes are requested through the cluster objects (directly by the
baseline governors, or through ``maxfreq`` limits by the ``Next`` agent).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.soc.cluster import Cluster
from repro.soc.platform import PlatformSpec
from repro.soc.power import PowerBreakdown, SocPowerModel
from repro.soc.sensors import SensorHub, SensorReadings
from repro.soc.thermal import ThermalNetwork


@dataclass(frozen=True)
class SocTelemetry:
    """Ground-truth state of the SoC after one simulation step.

    This is what the *recorder* stores (the experimenter's view).  Governors
    and the agent should use :meth:`SocSimulator.sample_sensors` instead,
    which goes through the noisy sensor path.
    """

    time_s: float
    power: PowerBreakdown
    temperatures_c: Mapping[str, float]
    frequencies_mhz: Mapping[str, float]
    max_limits_mhz: Mapping[str, float]
    utilisations: Mapping[str, float]

    @property
    def total_power_w(self) -> float:
        """Total platform power in watts."""
        return self.power.total_w

    def temperature_c(self, node: str) -> float:
        """Ground-truth temperature of one thermal node."""
        return self.temperatures_c[node]


class SocSimulator:
    """Simulated MPSoC: clusters + power + thermal + sensors."""

    def __init__(
        self,
        platform: PlatformSpec,
        rng: Optional[random.Random] = None,
        thermal_throttle: bool = True,
    ) -> None:
        self.platform = platform
        self._rng = rng if rng is not None else random.Random(0)
        self.clusters: Dict[str, Cluster] = platform.build_clusters()
        self.power_model = SocPowerModel(
            platform.cluster_specs,
            rest_of_platform_power_w=platform.rest_of_platform_power_w,
        )
        self.thermal = ThermalNetwork(
            platform.thermal_nodes,
            platform.thermal_couplings,
            ambient_c=platform.ambient_c,
        )
        self.sensors = SensorHub(
            list(platform.thermal_nodes),
            rng=self._rng,
        )
        self.thermal_throttle = thermal_throttle
        self._time_s = 0.0
        self._last_power: Optional[PowerBreakdown] = None

    # -- time -------------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction or the last reset."""
        return self._time_s

    def reset(self) -> None:
        """Reset time, temperatures, sensors and frequency limits."""
        self._time_s = 0.0
        self.thermal.reset()
        self.sensors.reset()
        self._last_power = None
        for cluster in self.clusters.values():
            cluster.reset_limits()
            cluster.set_frequency_index(0)
            cluster.utilisation = 0.0

    # -- cluster access ----------------------------------------------------------

    def cluster(self, name: str) -> Cluster:
        """Return a cluster by name."""
        return self.clusters[name]

    @property
    def cluster_names(self) -> list:
        """All cluster names in platform order."""
        return list(self.clusters)

    def set_utilisations(self, utilisations: Mapping[str, float]) -> None:
        """Set the utilisation of each cluster for the upcoming step."""
        for name, value in utilisations.items():
            self.clusters[name].utilisation = value

    # -- stepping ----------------------------------------------------------------

    def step(self, dt_s: float) -> SocTelemetry:
        """Advance power and thermal state by ``dt_s`` seconds."""
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        temps = self.thermal.temperatures_c()
        cluster_temps = {
            name: temps.get(name, self.platform.ambient_c) for name in self.clusters
        }
        power = self.power_model.evaluate(self.clusters, cluster_temps)

        heat_in = {
            name: power.cluster_total_w(name) for name in self.clusters
        }
        # A fraction of the rest-of-platform power (display backlight, PMIC)
        # heats the device body directly.
        if "device" in self.thermal.node_names:
            heat_in["device"] = heat_in.get("device", 0.0) + 0.5 * power.rest_of_platform_w

        self.thermal.step(heat_in, dt_s)
        self._time_s += dt_s
        self._last_power = power

        if self.thermal_throttle:
            self._apply_thermal_failsafe()

        return self.telemetry()

    def _apply_thermal_failsafe(self) -> None:
        """Emergency thermal clamp: mirrors the kernel's last-resort throttling.

        Neither the paper's agent nor the baselines rely on this path in
        normal operation; it only prevents unphysical runaway when a governor
        misbehaves, by forcing the hottest cluster to its lowest OPP when the
        junction temperature exceeds the platform maximum.
        """
        limit = self.platform.max_chip_temperature_c
        for name, cluster in self.clusters.items():
            if name in self.thermal.node_names and self.thermal.temperature_c(name) > limit:
                cluster.set_frequency_index(0)

    # -- observation --------------------------------------------------------------

    def telemetry(self) -> SocTelemetry:
        """Ground-truth snapshot of the current SoC state."""
        temps = self.thermal.temperatures_c()
        if self._last_power is None:
            cluster_temps = {
                name: temps.get(name, self.platform.ambient_c) for name in self.clusters
            }
            self._last_power = self.power_model.evaluate(self.clusters, cluster_temps)
        return SocTelemetry(
            time_s=self._time_s,
            power=self._last_power,
            temperatures_c=temps,
            frequencies_mhz={
                name: c.current_frequency_mhz for name, c in self.clusters.items()
            },
            max_limits_mhz={
                name: c.max_limit_frequency_mhz for name, c in self.clusters.items()
            },
            utilisations={name: c.utilisation for name, c in self.clusters.items()},
        )

    def sample_sensors(self) -> SensorReadings:
        """Sample the (noisy, periodic) sensors at the current time."""
        telemetry = self.telemetry()
        return self.sensors.read(
            true_power_w=telemetry.total_power_w,
            true_temperatures_c=telemetry.temperatures_c,
            now_s=self._time_s,
        )

    # -- convenience --------------------------------------------------------------

    @property
    def ambient_c(self) -> float:
        """Ambient temperature of the platform."""
        return self.thermal.ambient_c

    def big_cluster_name(self) -> Optional[str]:
        """Name of the big CPU cluster, if the platform has one."""
        from repro.soc.cluster import ClusterKind

        return self.platform.cluster_of_kind(ClusterKind.BIG_CPU)

    def gpu_cluster_name(self) -> Optional[str]:
        """Name of the GPU cluster, if the platform has one."""
        from repro.soc.cluster import ClusterKind

        return self.platform.cluster_of_kind(ClusterKind.GPU)
