"""Facade tying clusters, power model, thermal network and sensors together.

:class:`SocSimulator` is the single object the simulation engine talks to.
Per simulation tick the engine:

1. tells each cluster its utilisation for the tick (computed by the frame
   pipeline / workload model),
2. calls :meth:`SocSimulator.step_tick` with the tick length, which evaluates
   the power model, injects the heat into the thermal network and advances it,
3. reads :meth:`SocSimulator.sample_sensors` whenever a governor or the agent
   needs an observation.

Frequency changes are requested through the cluster objects (directly by the
baseline governors, or through ``maxfreq`` limits by the ``Next`` agent).

Hot-loop kernel
---------------
At construction the platform is compiled into an indexed representation:
clusters in a flat list, per-cluster power coefficient tuples, the thermal
node index of every cluster and preallocated heat/power buffers.
:meth:`step_tick` advances power and thermal state over those flat buffers
with zero per-tick dict or dataclass allocation.  Full
:class:`SocTelemetry`/:class:`~repro.soc.power.PowerBreakdown` snapshots are
*lazy*: they are materialised only when :meth:`telemetry` is called (the
engine does so at recorder ticks and governor-invocation boundaries), while
scalar totals (:attr:`total_power_w`, :meth:`hot_temperature_c`) stay cheap
every tick.  The kernel keeps every float operation in the same sequence as
the original dict-based path, so recorded outputs are bit-identical.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.soc.cluster import Cluster
from repro.soc.platform import PlatformSpec
from repro.soc.power import (
    LEAKAGE_REFERENCE_TEMPERATURE_C,
    PowerBreakdown,
    SocPowerModel,
)
from repro.soc.sensors import SensorHub, SensorReadings
from repro.soc.thermal import ThermalNetwork


@dataclass(frozen=True)
class SocTelemetry:
    """Ground-truth state of the SoC after one simulation step.

    This is what the *recorder* stores (the experimenter's view).  Governors
    and the agent should use :meth:`SocSimulator.sample_sensors` instead,
    which goes through the noisy sensor path.
    """

    time_s: float
    power: PowerBreakdown
    temperatures_c: Mapping[str, float]
    frequencies_mhz: Mapping[str, float]
    max_limits_mhz: Mapping[str, float]
    utilisations: Mapping[str, float]

    @property
    def total_power_w(self) -> float:
        """Total platform power in watts."""
        return self.power.total_w

    def temperature_c(self, node: str) -> float:
        """Ground-truth temperature of one thermal node."""
        return self.temperatures_c[node]


class SocSimulator:
    """Simulated MPSoC: clusters + power + thermal + sensors."""

    def __init__(
        self,
        platform: PlatformSpec,
        rng: Optional[random.Random] = None,
        thermal_throttle: bool = True,
    ) -> None:
        self.platform = platform
        self._rng = rng if rng is not None else random.Random(0)
        self.clusters: Dict[str, Cluster] = platform.build_clusters()
        self.power_model = SocPowerModel(
            platform.cluster_specs,
            rest_of_platform_power_w=platform.rest_of_platform_power_w,
        )
        self.thermal = ThermalNetwork(
            platform.thermal_nodes,
            platform.thermal_couplings,
            ambient_c=platform.ambient_c,
        )
        self.sensors = SensorHub(
            list(platform.thermal_nodes),
            rng=self._rng,
        )
        self.thermal_throttle = thermal_throttle
        self._time_s = 0.0
        self._last_power: Optional[PowerBreakdown] = None

        # -- compiled per-platform kernel state ---------------------------------
        #: Cluster names in platform order (the iteration order of every
        #: original dict-based loop, frozen once).
        self._cluster_names: Tuple[str, ...] = tuple(self.clusters)
        self._cluster_list: List[Cluster] = [self.clusters[n] for n in self._cluster_names]
        #: Thermal node index of each cluster (every cluster has a node of the
        #: same name -- enforced by PlatformSpec.__post_init__).
        self._cluster_node_index: Tuple[int, ...] = tuple(
            self.thermal.node_index(name) for name in self._cluster_names
        )
        self._power_coefficients = self.power_model.compile_coefficients(self._cluster_names)
        device_nodes = set(self.thermal.node_names)
        self._device_index: Optional[int] = (
            self.thermal.node_index("device") if "device" in device_nodes else None
        )
        n_clusters = len(self._cluster_list)
        #: Preallocated kernel buffers (reused every tick, never reallocated).
        self._cluster_temps: List[float] = [0.0] * n_clusters
        self._dynamic_w: List[float] = [0.0] * n_clusters
        self._leakage_w: List[float] = [0.0] * n_clusters
        self._heat_in: List[float] = [0.0] * len(self.thermal.node_names)
        #: Whether the dynamic/leakage buffers hold the power of the last step.
        self._power_buffers_valid = False
        self._max_chip_temperature_c = platform.max_chip_temperature_c
        #: Fully fused per-cluster kernel records:
        #: ``(k, cluster, node_index, capacitance_nf, cores, leak_w_per_v, leak_coeff)``.
        self._kernel_records = tuple(
            (
                k,
                self._cluster_list[k],
                self._cluster_node_index[k],
                self._power_coefficients[k][0],
                self._power_coefficients[k][1],
                self._power_coefficients[k][2],
                self._power_coefficients[k][3],
            )
            for k in range(n_clusters)
        )
        self._max_substep_s = ThermalNetwork.MAX_SUBSTEP_S

    # -- time -------------------------------------------------------------------

    @property
    def time_s(self) -> float:
        """Simulated time elapsed since construction or the last reset."""
        return self._time_s

    def reset(self) -> None:
        """Reset time, temperatures, sensors and frequency limits."""
        self._time_s = 0.0
        self.thermal.reset()
        self.sensors.reset()
        self._last_power = None
        self._power_buffers_valid = False
        for cluster in self.clusters.values():
            cluster.reset_limits()
            cluster.set_frequency_index(0)
            cluster.utilisation = 0.0

    # -- cluster access ----------------------------------------------------------

    def cluster(self, name: str) -> Cluster:
        """Return a cluster by name."""
        return self.clusters[name]

    @property
    def cluster_names(self) -> list:
        """All cluster names in platform order."""
        return list(self.clusters)

    def set_utilisations(self, utilisations: Mapping[str, float]) -> None:
        """Set the utilisation of each cluster for the upcoming step."""
        for name, value in utilisations.items():
            self.clusters[name].utilisation = value

    # -- stepping ----------------------------------------------------------------

    def step(self, dt_s: float) -> SocTelemetry:
        """Advance power and thermal state by ``dt_s`` and snapshot the SoC.

        Kept for callers that want the telemetry of every step; the
        simulation engine uses :meth:`step_tick` plus a lazy
        :meth:`telemetry` call at recorder ticks instead.
        """
        self.step_tick(dt_s)
        return self.telemetry()

    def step_tick(self, dt_s: float) -> None:
        """Advance power and thermal state by ``dt_s`` (compiled hot path).

        Runs entirely over the preallocated flat buffers: no dict, dataclass
        or list is allocated per tick.  Results are bit-identical to the
        original mapping-based stepping (same float operations in the same
        order), which the golden-trace suite pins down.
        """
        if dt_s <= 0:
            raise ValueError("dt_s must be positive")
        thermal = self.thermal
        node_temps = thermal._temps
        dynamic = self._dynamic_w
        leakage = self._leakage_w
        heat_in = self._heat_in
        for i in range(len(heat_in)):
            heat_in[i] = 0.0
        # One fused pass per cluster: power evaluation (same float sequence as
        # SocPowerModel.evaluate_flat / ClusterPowerModel) straight into the
        # heat buffer.
        exp = math.exp
        for k, cluster, node_idx, cap_nf, cores, leak_w_per_v, leak_coeff in (
            self._kernel_records
        ):
            index = cluster._current_index
            frequency = cluster._freqs[index]
            voltage = cluster._volts[index]
            utilisation = cluster._utilisation
            if utilisation < 0.0:
                utilisation = 0.0
            elif utilisation > 1.0:
                utilisation = 1.0
            per_core_full = cap_nf * frequency * voltage ** 2 * 1e-3
            dynamic_w = per_core_full * cores * utilisation
            delta_t = node_temps[node_idx] - LEAKAGE_REFERENCE_TEMPERATURE_C
            leakage_w = leak_w_per_v * voltage * cores * exp(leak_coeff * delta_t)
            dynamic[k] = dynamic_w
            leakage[k] = leakage_w
            heat_in[node_idx] += dynamic_w + leakage_w
        # A fraction of the rest-of-platform power (display backlight, PMIC)
        # heats the device body directly.
        if self._device_index is not None:
            heat_in[self._device_index] += 0.5 * self.power_model.rest_of_platform_power_w

        if 1e-12 < dt_s <= self._max_substep_s:
            # Common case (one VSync period): a single Euler sub-step, without
            # the subdivision loop (min(MAX_SUBSTEP_S, dt_s) == dt_s).
            thermal._euler_substep(heat_in, dt_s)
        else:
            thermal.step_flat(heat_in, dt_s)
        self._time_s += dt_s
        self._last_power = None
        self._power_buffers_valid = True

        if self.thermal_throttle:
            limit = self._max_chip_temperature_c
            clusters = self._cluster_list
            node_index = self._cluster_node_index
            for k in range(len(clusters)):
                if node_temps[node_index[k]] > limit:
                    clusters[k].set_frequency_index(0)

    # -- observation --------------------------------------------------------------

    @property
    def total_power_w(self) -> float:
        """Total platform power of the last step (cheap scalar, no snapshot)."""
        if not self._power_buffers_valid:
            return self.telemetry().total_power_w
        return (
            sum(self._dynamic_w) + sum(self._leakage_w)
        ) + self.power_model.rest_of_platform_power_w

    def hot_temperature_c(self) -> float:
        """Hottest thermal node temperature (cheap scalar, no snapshot)."""
        return max(self.thermal._temps)

    def dvfs_values(self) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        """Current (frequencies, maxfreq limits) tuples in platform order.

        One fused call for the recorder's pre-scaler DVFS snapshot.
        """
        clusters = self._cluster_list
        return (
            tuple([c._freqs[c._current_index] for c in clusters]),
            tuple([c._freqs[c._max_limit_index] for c in clusters]),
        )

    def record_values(self) -> Tuple[float, Tuple[float, ...], Tuple[float, ...], Tuple[float, ...]]:
        """Fused recorder snapshot: total power, per-cluster power, temps, utils.

        Everything the recorder fast path needs that is stable between the
        SoC step and the end of the tick, read in one call from the kernel
        buffers (bit-identical to the lazy telemetry values).
        """
        dynamic = self._dynamic_w
        leakage = self._leakage_w
        if not self._power_buffers_valid:
            power = self._evaluate_power_now()
            names = self._cluster_names
            total = power.total_w
            per_cluster = tuple(power.cluster_total_w(name) for name in names)
        else:
            total = (sum(dynamic) + sum(leakage)) + self.power_model.rest_of_platform_power_w
            per_cluster = tuple(
                [dynamic[k] + leakage[k] for k in range(len(dynamic))]
            )
        return (
            total,
            per_cluster,
            tuple(self.thermal._temps),
            tuple([c._utilisation for c in self._cluster_list]),
        )

    def cluster_name_keys(self) -> Tuple[str, ...]:
        """Cluster names in platform order (recorder column layout)."""
        return self._cluster_names

    def node_name_keys(self) -> Tuple[str, ...]:
        """Thermal node names in index order (recorder column layout)."""
        return tuple(self.thermal.node_names)

    def _evaluate_power_now(self) -> PowerBreakdown:
        """Mapping-based power evaluation at the current state (cold path)."""
        temps = self.thermal.temperatures_c()
        cluster_temps = {
            name: temps.get(name, self.platform.ambient_c) for name in self.clusters
        }
        return self.power_model.evaluate(self.clusters, cluster_temps)

    def telemetry(self) -> SocTelemetry:
        """Ground-truth snapshot of the current SoC state (lazy, allocating).

        Materialised only where a full snapshot is needed -- recorder ticks
        and governor-invocation boundaries -- not every simulation tick.
        """
        temps = self.thermal.temperatures_c()
        if self._last_power is None:
            if self._power_buffers_valid:
                names = self._cluster_names
                dynamic = self._dynamic_w
                leakage = self._leakage_w
                self._last_power = PowerBreakdown(
                    dynamic_w={name: dynamic[k] for k, name in enumerate(names)},
                    leakage_w={name: leakage[k] for k, name in enumerate(names)},
                    rest_of_platform_w=self.power_model.rest_of_platform_power_w,
                )
            else:
                self._last_power = self._evaluate_power_now()
        return SocTelemetry(
            time_s=self._time_s,
            power=self._last_power,
            temperatures_c=temps,
            frequencies_mhz={
                name: c.current_frequency_mhz for name, c in self.clusters.items()
            },
            max_limits_mhz={
                name: c.max_limit_frequency_mhz for name, c in self.clusters.items()
            },
            utilisations={name: c.utilisation for name, c in self.clusters.items()},
        )

    def sample_sensors(self) -> SensorReadings:
        """Sample the (noisy, periodic) sensors at the current time."""
        return self.sensors.read(
            true_power_w=self.total_power_w,
            true_temperatures_c=self.thermal.temperatures_c(),
            now_s=self._time_s,
        )

    # -- convenience --------------------------------------------------------------

    @property
    def ambient_c(self) -> float:
        """Ambient temperature of the platform."""
        return self.thermal.ambient_c

    def big_cluster_name(self) -> Optional[str]:
        """Name of the big CPU cluster, if the platform has one."""
        from repro.soc.cluster import ClusterKind

        return self.platform.cluster_of_kind(ClusterKind.BIG_CPU)

    def gpu_cluster_name(self) -> Optional[str]:
        """Name of the GPU cluster, if the platform has one."""
        from repro.soc.cluster import ClusterKind

        return self.platform.cluster_of_kind(ClusterKind.GPU)
