"""Operating performance points (OPPs) and frequency tables.

A processing-element cluster on a mobile MPSoC exposes a discrete set of
operating frequencies.  Each frequency implies a supply voltage, and the
(frequency, voltage) pair is conventionally called an OPP.  The paper's
platform (Exynos 9810) performs *cluster-wise* DVFS: the whole cluster always
runs at a single OPP.

This module provides :class:`FrequencyPoint` (one OPP) and :class:`OppTable`
(the ordered set of OPPs of one cluster) together with the index arithmetic
needed by both the baseline governors and the Q-learning agent (step up, step
down, clamp to a ``maxfreq`` limit, ...).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class FrequencyPoint:
    """A single operating performance point of a cluster.

    Attributes
    ----------
    frequency_mhz:
        Clock frequency in MHz.
    voltage_v:
        Supply voltage in volts required to sustain the frequency.
    """

    frequency_mhz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.frequency_mhz <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency_mhz}")
        if self.voltage_v <= 0:
            raise ValueError(f"voltage must be positive, got {self.voltage_v}")

    @property
    def frequency_hz(self) -> float:
        """Frequency in Hz."""
        return self.frequency_mhz * 1e6

    @property
    def frequency_ghz(self) -> float:
        """Frequency in GHz."""
        return self.frequency_mhz / 1e3


def interpolate_voltages(
    frequencies_mhz: Sequence[float],
    v_min: float,
    v_max: float,
    curvature: float = 1.0,
) -> List[float]:
    """Assign a voltage to each frequency via a monotone interpolation.

    Public voltage tables of commercial SoCs are rarely disclosed, so the
    reproduction derives a plausible voltage curve from the minimum and
    maximum rail voltages.  ``curvature`` > 1 bends the curve so that the top
    frequencies pay a super-linear voltage premium, which is what real silicon
    exhibits and what makes race-to-idle at the top OPPs power-inefficient.

    Parameters
    ----------
    frequencies_mhz:
        Frequencies to assign voltages to (any order).
    v_min, v_max:
        Voltage at the lowest and highest frequency respectively.
    curvature:
        Exponent applied to the normalised frequency before interpolation.

    Returns
    -------
    list of float
        Voltages in the same order as ``frequencies_mhz``.
    """
    if v_min <= 0 or v_max <= 0:
        raise ValueError("voltages must be positive")
    if v_max < v_min:
        raise ValueError("v_max must be >= v_min")
    if curvature <= 0:
        raise ValueError("curvature must be positive")
    lo = min(frequencies_mhz)
    hi = max(frequencies_mhz)
    span = hi - lo
    voltages = []
    for f in frequencies_mhz:
        if span == 0:
            x = 1.0
        else:
            x = (f - lo) / span
        voltages.append(v_min + (v_max - v_min) * (x ** curvature))
    return voltages


@dataclass
class OppTable:
    """Ordered table of operating performance points for one cluster.

    The table is stored sorted by ascending frequency.  Indices used
    throughout the library always refer to this ascending order, i.e. index 0
    is the slowest OPP and ``len(table) - 1`` the fastest.
    """

    points: Tuple[FrequencyPoint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.points:
            raise ValueError("an OPP table needs at least one frequency point")
        ordered = tuple(sorted(self.points, key=lambda p: p.frequency_mhz))
        freqs = [p.frequency_mhz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise ValueError("duplicate frequencies in OPP table")
        object.__setattr__(self, "points", ordered)
        self._frequencies = [p.frequency_mhz for p in self.points]

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_frequencies(
        cls,
        frequencies_mhz: Iterable[float],
        v_min: float,
        v_max: float,
        curvature: float = 1.0,
    ) -> "OppTable":
        """Build a table from bare frequencies with an interpolated V/f curve."""
        freqs = list(frequencies_mhz)
        volts = interpolate_voltages(freqs, v_min=v_min, v_max=v_max, curvature=curvature)
        return cls(points=tuple(FrequencyPoint(f, v) for f, v in zip(freqs, volts)))

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[FrequencyPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> FrequencyPoint:
        return self.points[index]

    # -- lookups ---------------------------------------------------------------

    @property
    def frequencies_mhz(self) -> List[float]:
        """All frequencies, ascending, in MHz."""
        return list(self._frequencies)

    @property
    def min_frequency_mhz(self) -> float:
        """Lowest frequency of the table."""
        return self._frequencies[0]

    @property
    def max_frequency_mhz(self) -> float:
        """Highest frequency of the table."""
        return self._frequencies[-1]

    def index_of(self, frequency_mhz: float) -> int:
        """Return the index of an exact table frequency.

        Raises
        ------
        ValueError
            If ``frequency_mhz`` is not an exact entry of the table.
        """
        idx = bisect.bisect_left(self._frequencies, frequency_mhz)
        if idx < len(self._frequencies) and self._frequencies[idx] == frequency_mhz:
            return idx
        raise ValueError(f"{frequency_mhz} MHz is not an OPP of this table")

    def nearest_index(self, frequency_mhz: float) -> int:
        """Index of the OPP whose frequency is closest to ``frequency_mhz``."""
        idx = bisect.bisect_left(self._frequencies, frequency_mhz)
        if idx == 0:
            return 0
        if idx >= len(self._frequencies):
            return len(self._frequencies) - 1
        before = self._frequencies[idx - 1]
        after = self._frequencies[idx]
        return idx if (after - frequency_mhz) < (frequency_mhz - before) else idx - 1

    def floor_index(self, frequency_mhz: float) -> int:
        """Index of the fastest OPP not exceeding ``frequency_mhz``.

        Clamps to index 0 when ``frequency_mhz`` is below the slowest OPP.
        """
        idx = bisect.bisect_right(self._frequencies, frequency_mhz) - 1
        return max(0, idx)

    def ceil_index(self, frequency_mhz: float) -> int:
        """Index of the slowest OPP at or above ``frequency_mhz``.

        Clamps to the top index when ``frequency_mhz`` exceeds the fastest OPP.
        """
        idx = bisect.bisect_left(self._frequencies, frequency_mhz)
        return min(len(self._frequencies) - 1, idx)

    def clamp_index(self, index: int) -> int:
        """Clamp an arbitrary integer index into the valid range of the table."""
        return max(0, min(len(self._frequencies) - 1, index))

    def step(self, index: int, delta: int) -> int:
        """Move ``delta`` OPP steps from ``index``, clamped to the table."""
        return self.clamp_index(index + delta)

    def frequency_at(self, index: int) -> float:
        """Frequency in MHz of the OPP at ``index``."""
        return self.points[self.clamp_index(index)].frequency_mhz

    def voltage_at(self, index: int) -> float:
        """Voltage in volts of the OPP at ``index``."""
        return self.points[self.clamp_index(index)].voltage_v

    def normalised_frequency(self, index: int) -> float:
        """Frequency at ``index`` divided by the table maximum (0 < x <= 1)."""
        return self.frequency_at(index) / self.max_frequency_mhz
