"""Sensor sampling: power meter, thermal sensors and the virtual device sensor.

On the real Note 9 the agent reads power and temperature through sysfs nodes
that are updated periodically by the kernel and carry quantisation plus
measurement noise.  These classes reproduce that observation path so that the
RL agent never sees the simulator's exact internal values, only periodically
sampled, noisy readings -- the same epistemic position it would be in on
hardware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional


@dataclass
class SensorConfig:
    """Configuration shared by all sampled sensors.

    Attributes
    ----------
    sample_period_s:
        Minimum time between two refreshes of the reported value.  Reads in
        between return the last sampled value (like a cached sysfs node).
    noise_std:
        Standard deviation of additive Gaussian noise applied at sampling
        time, in the unit of the measured quantity.
    quantisation:
        Readings are rounded to a multiple of this value (0 disables it).
    """

    sample_period_s: float = 0.1
    noise_std: float = 0.0
    quantisation: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_period_s < 0:
            raise ValueError("sample_period_s must be non-negative")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.quantisation < 0:
            raise ValueError("quantisation must be non-negative")


class SampledSensor:
    """Base class implementing the sample-and-hold + noise behaviour."""

    def __init__(
        self,
        config: SensorConfig,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        self._rng = rng if rng is not None else random.Random(0)
        self._last_sample_time_s: Optional[float] = None
        self._last_value: Optional[float] = None

    def _condition(self, value: float) -> float:
        if self.config.noise_std > 0:
            value += self._rng.gauss(0.0, self.config.noise_std)
        if self.config.quantisation > 0:
            q = self.config.quantisation
            value = round(value / q) * q
        return value

    def read(self, true_value: float, now_s: float) -> float:
        """Return the sensor reading for the true value at time ``now_s``."""
        due = (
            self._last_sample_time_s is None
            or now_s - self._last_sample_time_s >= self.config.sample_period_s
        )
        if due or self._last_value is None:
            self._last_value = self._condition(true_value)
            self._last_sample_time_s = now_s
        return self._last_value

    def reset(self) -> None:
        """Forget the held sample so the next read refreshes immediately."""
        self._last_sample_time_s = None
        self._last_value = None


class PowerSensor(SampledSensor):
    """Platform power sensor (fuel-gauge style), reporting watts."""

    def __init__(
        self,
        sample_period_s: float = 0.1,
        noise_std_w: float = 0.02,
        quantisation_w: float = 0.001,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            SensorConfig(
                sample_period_s=sample_period_s,
                noise_std=noise_std_w,
                quantisation=quantisation_w,
            ),
            rng=rng,
        )


class TemperatureSensor(SampledSensor):
    """On-die or virtual thermal sensor, reporting Celsius."""

    def __init__(
        self,
        sample_period_s: float = 0.1,
        noise_std_c: float = 0.1,
        quantisation_c: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            SensorConfig(
                sample_period_s=sample_period_s,
                noise_std=noise_std_c,
                quantisation=quantisation_c,
            ),
            rng=rng,
        )


@dataclass(frozen=True)
class SensorReadings:
    """One snapshot of everything the agent can observe from the sensors."""

    power_w: float
    temperatures_c: Mapping[str, float]
    device_temperature_c: float

    def temperature_c(self, node: str) -> float:
        """Temperature reading of a specific sensor node."""
        return self.temperatures_c[node]


@dataclass(frozen=True)
class _FlatSensorOrder:
    """Compiled sensor layout for :meth:`SensorHub.read_flat`.

    ``temps`` holds ``(position, sensor, is_device_node, noise_std,
    quantisation, sample_period_s, gauss)`` per thermal sensor in hub
    iteration order (the trailing fields are cached from the sensor's static
    config and RNG); ``power`` is the same record for the power sensor;
    ``device_position`` is the device node's slot in the true-temperature
    list (or ``None``); ``big_slot`` indexes ``temps`` for the big-cluster
    sensor (or ``None`` for the hottest-node fallback).
    """

    temps: tuple
    power: tuple
    device_position: Optional[int]
    big_slot: Optional[int]


class SensorHub:
    """Bundles the power sensor and all thermal sensors of a platform.

    The hub also computes the *virtual device sensor*.  The vendor formula on
    the Note 9 is proprietary; the reproduction uses a weighted blend of the
    physical device-node temperature and the hottest silicon node, which
    matches the qualitative behaviour described in the paper (a slow-moving
    temperature that still reflects sustained SoC heating).
    """

    def __init__(
        self,
        thermal_node_names: Mapping[str, float] | list | tuple,
        power_sensor: Optional[PowerSensor] = None,
        temperature_sensor_factory: Optional[Callable[[], TemperatureSensor]] = None,
        device_node: str = "device",
        device_blend_weight: float = 0.75,
        rng: Optional[random.Random] = None,
    ) -> None:
        names = list(thermal_node_names)
        if not names:
            raise ValueError("SensorHub needs at least one thermal node")
        self._rng = rng if rng is not None else random.Random(0)
        self.power_sensor = power_sensor or PowerSensor(rng=self._rng)
        factory = temperature_sensor_factory or (lambda: TemperatureSensor(rng=self._rng))
        self.temperature_sensors: Dict[str, TemperatureSensor] = {
            name: factory() for name in names
        }
        self.device_node = device_node
        if not 0.0 <= device_blend_weight <= 1.0:
            raise ValueError("device_blend_weight must be in [0, 1]")
        self.device_blend_weight = device_blend_weight

    def read(
        self,
        true_power_w: float,
        true_temperatures_c: Mapping[str, float],
        now_s: float,
    ) -> SensorReadings:
        """Sample all sensors at time ``now_s``."""
        power = self.power_sensor.read(true_power_w, now_s)
        temps: Dict[str, float] = {}
        for name, sensor in self.temperature_sensors.items():
            if name in true_temperatures_c:
                temps[name] = sensor.read(true_temperatures_c[name], now_s)
        device_temp = self._virtual_device_temperature(temps, true_temperatures_c)
        return SensorReadings(
            power_w=max(0.0, power),
            temperatures_c=temps,
            device_temperature_c=device_temp,
        )

    def compile_flat(self, node_names, big_node: Optional[str] = None):
        """Compile a flat read order over ``node_names`` for :meth:`read_flat`.

        ``node_names`` fixes the positional layout of the true-temperature
        list passed to :meth:`read_flat`; ``big_node`` (optional) selects the
        sensor whose reading :meth:`read_flat` returns as the big-cluster
        temperature (falling back to the hottest sampled node, as
        the scalar engine does when the big node has no sensor).
        """
        position = {name: index for index, name in enumerate(node_names)}

        def entry(pos, sensor, is_device):
            config = sensor.config
            return (
                pos,
                sensor,
                is_device,
                config.noise_std,
                config.quantisation,
                config.sample_period_s,
                sensor._rng.gauss,
            )

        temps = []
        for name, sensor in self.temperature_sensors.items():
            if name in position:
                temps.append(entry(position[name], sensor, name == self.device_node))
        big_slot = None
        if big_node is not None:
            for slot, record in enumerate(temps):
                if node_names[record[0]] == big_node:
                    big_slot = slot
                    break
        power = self.power_sensor
        return _FlatSensorOrder(
            temps=tuple(temps),
            power=entry(-1, power, False),
            device_position=position.get(self.device_node),
            big_slot=big_slot,
        )

    def read_flat(self, order, true_power_w, true_temps, now_s):
        """Positional fast path of :meth:`read` for compiled hot loops.

        ``true_temps`` is a list laid out per ``order`` (see
        :meth:`compile_flat`).  Samples exactly the sensors :meth:`read`
        samples, in the same sequence (power first, then thermal sensors in
        hub order) against the same per-sensor RNGs, so sample-and-hold
        state and noise draws stay bit-identical to the mapping-based path.
        Returns ``(power_w, big_temperature_c, device_temperature_c)``.
        """
        _pos, sensor, _is_device, noise_std, quantisation, period, gauss = order.power
        last_time = sensor._last_sample_time_s
        if last_time is None or now_s - last_time >= period:
            value = true_power_w
            if noise_std > 0:
                value += gauss(0.0, noise_std)
            if quantisation > 0:
                value = round(value / quantisation) * quantisation
            sensor._last_value = value
            sensor._last_sample_time_s = now_s
            power = value
        else:
            power = sensor._last_value
        power = max(0.0, power)
        sampled = []
        hottest = None
        body = None
        for pos, sensor, is_device, noise_std, quantisation, period, gauss in order.temps:
            last_time = sensor._last_sample_time_s
            if last_time is None or now_s - last_time >= period:
                value = true_temps[pos]
                if noise_std > 0:
                    value += gauss(0.0, noise_std)
                if quantisation > 0:
                    value = round(value / quantisation) * quantisation
                sensor._last_value = value
                sensor._last_sample_time_s = now_s
            else:
                value = sensor._last_value
            sampled.append(value)
            if is_device:
                body = value
            elif hottest is None or value > hottest:
                hottest = value
        if hottest is None:
            hottest = max(true_temps)
        if body is None:
            if order.device_position is not None:
                body = true_temps[order.device_position]
            else:
                body = hottest
        w = self.device_blend_weight
        device_temp = w * body + (1.0 - w) * hottest
        if order.big_slot is not None:
            big_temp = sampled[order.big_slot]
        else:
            big_temp = max(sampled)
        return power, big_temp, device_temp

    def _virtual_device_temperature(
        self,
        sampled_temps: Mapping[str, float],
        true_temps: Mapping[str, float],
    ) -> float:
        silicon = [
            value for name, value in sampled_temps.items() if name != self.device_node
        ]
        hottest_silicon = max(silicon) if silicon else max(true_temps.values())
        if self.device_node in sampled_temps:
            body = sampled_temps[self.device_node]
        elif self.device_node in true_temps:
            body = true_temps[self.device_node]
        else:
            body = hottest_silicon
        w = self.device_blend_weight
        return w * body + (1.0 - w) * hottest_silicon

    def reset(self) -> None:
        """Reset every sensor's sample-and-hold state."""
        self.power_sensor.reset()
        for sensor in self.temperature_sensors.values():
            sensor.reset()
