"""Sensor sampling: power meter, thermal sensors and the virtual device sensor.

On the real Note 9 the agent reads power and temperature through sysfs nodes
that are updated periodically by the kernel and carry quantisation plus
measurement noise.  These classes reproduce that observation path so that the
RL agent never sees the simulator's exact internal values, only periodically
sampled, noisy readings -- the same epistemic position it would be in on
hardware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional


@dataclass
class SensorConfig:
    """Configuration shared by all sampled sensors.

    Attributes
    ----------
    sample_period_s:
        Minimum time between two refreshes of the reported value.  Reads in
        between return the last sampled value (like a cached sysfs node).
    noise_std:
        Standard deviation of additive Gaussian noise applied at sampling
        time, in the unit of the measured quantity.
    quantisation:
        Readings are rounded to a multiple of this value (0 disables it).
    """

    sample_period_s: float = 0.1
    noise_std: float = 0.0
    quantisation: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_period_s < 0:
            raise ValueError("sample_period_s must be non-negative")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.quantisation < 0:
            raise ValueError("quantisation must be non-negative")


class SampledSensor:
    """Base class implementing the sample-and-hold + noise behaviour."""

    def __init__(
        self,
        config: SensorConfig,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config
        self._rng = rng if rng is not None else random.Random(0)
        self._last_sample_time_s: Optional[float] = None
        self._last_value: Optional[float] = None

    def _condition(self, value: float) -> float:
        if self.config.noise_std > 0:
            value += self._rng.gauss(0.0, self.config.noise_std)
        if self.config.quantisation > 0:
            q = self.config.quantisation
            value = round(value / q) * q
        return value

    def read(self, true_value: float, now_s: float) -> float:
        """Return the sensor reading for the true value at time ``now_s``."""
        due = (
            self._last_sample_time_s is None
            or now_s - self._last_sample_time_s >= self.config.sample_period_s
        )
        if due or self._last_value is None:
            self._last_value = self._condition(true_value)
            self._last_sample_time_s = now_s
        return self._last_value

    def reset(self) -> None:
        """Forget the held sample so the next read refreshes immediately."""
        self._last_sample_time_s = None
        self._last_value = None


class PowerSensor(SampledSensor):
    """Platform power sensor (fuel-gauge style), reporting watts."""

    def __init__(
        self,
        sample_period_s: float = 0.1,
        noise_std_w: float = 0.02,
        quantisation_w: float = 0.001,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            SensorConfig(
                sample_period_s=sample_period_s,
                noise_std=noise_std_w,
                quantisation=quantisation_w,
            ),
            rng=rng,
        )


class TemperatureSensor(SampledSensor):
    """On-die or virtual thermal sensor, reporting Celsius."""

    def __init__(
        self,
        sample_period_s: float = 0.1,
        noise_std_c: float = 0.1,
        quantisation_c: float = 0.1,
        rng: Optional[random.Random] = None,
    ) -> None:
        super().__init__(
            SensorConfig(
                sample_period_s=sample_period_s,
                noise_std=noise_std_c,
                quantisation=quantisation_c,
            ),
            rng=rng,
        )


@dataclass(frozen=True)
class SensorReadings:
    """One snapshot of everything the agent can observe from the sensors."""

    power_w: float
    temperatures_c: Mapping[str, float]
    device_temperature_c: float

    def temperature_c(self, node: str) -> float:
        """Temperature reading of a specific sensor node."""
        return self.temperatures_c[node]


class SensorHub:
    """Bundles the power sensor and all thermal sensors of a platform.

    The hub also computes the *virtual device sensor*.  The vendor formula on
    the Note 9 is proprietary; the reproduction uses a weighted blend of the
    physical device-node temperature and the hottest silicon node, which
    matches the qualitative behaviour described in the paper (a slow-moving
    temperature that still reflects sustained SoC heating).
    """

    def __init__(
        self,
        thermal_node_names: Mapping[str, float] | list | tuple,
        power_sensor: Optional[PowerSensor] = None,
        temperature_sensor_factory: Optional[Callable[[], TemperatureSensor]] = None,
        device_node: str = "device",
        device_blend_weight: float = 0.75,
        rng: Optional[random.Random] = None,
    ) -> None:
        names = list(thermal_node_names)
        if not names:
            raise ValueError("SensorHub needs at least one thermal node")
        self._rng = rng if rng is not None else random.Random(0)
        self.power_sensor = power_sensor or PowerSensor(rng=self._rng)
        factory = temperature_sensor_factory or (lambda: TemperatureSensor(rng=self._rng))
        self.temperature_sensors: Dict[str, TemperatureSensor] = {
            name: factory() for name in names
        }
        self.device_node = device_node
        if not 0.0 <= device_blend_weight <= 1.0:
            raise ValueError("device_blend_weight must be in [0, 1]")
        self.device_blend_weight = device_blend_weight

    def read(
        self,
        true_power_w: float,
        true_temperatures_c: Mapping[str, float],
        now_s: float,
    ) -> SensorReadings:
        """Sample all sensors at time ``now_s``."""
        power = self.power_sensor.read(true_power_w, now_s)
        temps: Dict[str, float] = {}
        for name, sensor in self.temperature_sensors.items():
            if name in true_temperatures_c:
                temps[name] = sensor.read(true_temperatures_c[name], now_s)
        device_temp = self._virtual_device_temperature(temps, true_temperatures_c)
        return SensorReadings(
            power_w=max(0.0, power),
            temperatures_c=temps,
            device_temperature_c=device_temp,
        )

    def _virtual_device_temperature(
        self,
        sampled_temps: Mapping[str, float],
        true_temps: Mapping[str, float],
    ) -> float:
        silicon = [
            value for name, value in sampled_temps.items() if name != self.device_node
        ]
        hottest_silicon = max(silicon) if silicon else max(true_temps.values())
        if self.device_node in sampled_temps:
            body = sampled_temps[self.device_node]
        elif self.device_node in true_temps:
            body = true_temps[self.device_node]
        else:
            body = hottest_silicon
        w = self.device_blend_weight
        return w * body + (1.0 - w) * hottest_silicon

    def reset(self) -> None:
        """Reset every sensor's sample-and-hold state."""
        self.power_sensor.reset()
        for sensor in self.temperature_sensors.values():
            sensor.reset()
