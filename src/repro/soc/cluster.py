"""Processing-element clusters with cluster-wise DVFS.

The Exynos 9810 exposes three DVFS domains: the big CPU cluster (4x Mongoose
M3), the LITTLE CPU cluster (4x Cortex-A55) and the Mali-G72 GPU.  The
``Next`` agent never selects an operating frequency directly; it sets the
``maxfreq`` limit of a cluster and lets the underlying utilisation governor
pick any OPP between ``minfreq`` and ``maxfreq``.  :class:`Cluster` models
exactly that contract.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.soc.frequency import OppTable


class ClusterKind(enum.Enum):
    """Functional role of a cluster inside the MPSoC."""

    BIG_CPU = "big_cpu"
    LITTLE_CPU = "little_cpu"
    GPU = "gpu"

    @property
    def is_cpu(self) -> bool:
        """Whether the cluster executes CPU work (as opposed to GPU work)."""
        return self in (ClusterKind.BIG_CPU, ClusterKind.LITTLE_CPU)


@dataclass
class ClusterSpec:
    """Static description of a cluster.

    Attributes
    ----------
    name:
        Human readable identifier, e.g. ``"big"``.
    kind:
        Functional role (big CPU, LITTLE CPU or GPU).
    opp_table:
        The cluster's DVFS table.
    core_count:
        Number of identical processing elements in the cluster.
    capacitance_nf:
        Effective switching capacitance per core in nanofarad.  Dynamic power
        of the cluster is ``C * f * V^2`` summed over busy cores.
    leakage_w_per_v:
        Leakage current coefficient: static power at the reference
        temperature is ``leakage_w_per_v * V`` per core.
    leakage_temp_coeff:
        Exponential temperature coefficient of leakage (per kelvin).
    perf_per_mhz:
        Relative work executed per MHz per core, normalised so that the big
        CPU core is 1.0.  Captures the IPC gap between big and LITTLE cores.
    """

    name: str
    kind: ClusterKind
    opp_table: OppTable
    core_count: int = 4
    capacitance_nf: float = 1.0
    leakage_w_per_v: float = 0.05
    leakage_temp_coeff: float = 0.012
    perf_per_mhz: float = 1.0

    def __post_init__(self) -> None:
        if self.core_count <= 0:
            raise ValueError("core_count must be positive")
        if self.capacitance_nf <= 0:
            raise ValueError("capacitance_nf must be positive")
        if self.perf_per_mhz <= 0:
            raise ValueError("perf_per_mhz must be positive")

    @property
    def max_capacity(self) -> float:
        """Cluster compute capacity at the top OPP (arbitrary work units/s).

        One work unit corresponds to what a big core executes in one cycle at
        ``perf_per_mhz == 1.0``, so capacity is expressed in mega-work-units
        per second and scales linearly with frequency and core count.
        """
        return self.opp_table.max_frequency_mhz * self.perf_per_mhz * self.core_count


class Cluster:
    """A DVFS domain with min/max frequency limits and an operating point.

    The cluster tracks three indices into its OPP table:

    * ``current_index`` -- the OPP the hardware is running at right now,
    * ``max_limit_index`` -- the ``maxfreq`` limit (what ``Next`` actuates),
    * ``min_limit_index`` -- the ``minfreq`` limit (left at 0 by default).

    Setting a limit never raises an exception for out-of-range requests: the
    request is clamped, mirroring the behaviour of sysfs frequency limits on
    Android where writes are coerced into the permitted range.
    """

    def __init__(self, spec: ClusterSpec, initial_index: Optional[int] = None) -> None:
        self.spec = spec
        self._table = spec.opp_table
        # Flat OPP columns: the simulation hot loop reads frequency/voltage by
        # index every tick, so the dataclass indirection of FrequencyPoint is
        # hoisted out once here (same values, cheap tuple indexing).
        self._freqs: Tuple[float, ...] = tuple(p.frequency_mhz for p in self._table.points)
        self._volts: Tuple[float, ...] = tuple(p.voltage_v for p in self._table.points)
        self._min_limit_index = 0
        self._max_limit_index = len(self._table) - 1
        if initial_index is None:
            initial_index = len(self._table) - 1
        self._current_index = self._table.clamp_index(initial_index)
        self._utilisation = 0.0

    # -- identity --------------------------------------------------------------

    @property
    def name(self) -> str:
        """Cluster name from the spec."""
        return self.spec.name

    @property
    def kind(self) -> ClusterKind:
        """Cluster kind from the spec."""
        return self.spec.kind

    @property
    def opp_table(self) -> OppTable:
        """The cluster's OPP table."""
        return self._table

    # -- operating point -------------------------------------------------------

    @property
    def current_index(self) -> int:
        """Index of the OPP the cluster currently runs at."""
        return self._current_index

    @property
    def current_frequency_mhz(self) -> float:
        """Current operating frequency in MHz."""
        return self._freqs[self._current_index]

    @property
    def current_voltage_v(self) -> float:
        """Current supply voltage in volts."""
        return self._volts[self._current_index]

    @property
    def utilisation(self) -> float:
        """Most recent utilisation of the cluster in [0, 1]."""
        return self._utilisation

    @utilisation.setter
    def utilisation(self, value: float) -> None:
        self._utilisation = min(1.0, max(0.0, float(value)))

    def set_frequency_index(self, index: int) -> int:
        """Request an operating point; it is clamped into the limit window.

        Returns the index actually applied.
        """
        index = self._table.clamp_index(index)
        index = max(self._min_limit_index, min(self._max_limit_index, index))
        self._current_index = index
        return index

    def set_frequency_mhz(self, frequency_mhz: float) -> float:
        """Request the closest OPP to ``frequency_mhz`` within the limits.

        Returns the frequency actually applied in MHz.
        """
        self.set_frequency_index(self._table.nearest_index(frequency_mhz))
        return self.current_frequency_mhz

    # -- limits (the Next actuation surface) ------------------------------------

    @property
    def min_limit_index(self) -> int:
        """Index of the current ``minfreq`` limit."""
        return self._min_limit_index

    @property
    def max_limit_index(self) -> int:
        """Index of the current ``maxfreq`` limit."""
        return self._max_limit_index

    @property
    def max_limit_frequency_mhz(self) -> float:
        """Frequency in MHz of the current ``maxfreq`` limit."""
        return self._freqs[self._max_limit_index]

    @property
    def min_limit_frequency_mhz(self) -> float:
        """Frequency in MHz of the current ``minfreq`` limit."""
        return self._freqs[self._min_limit_index]

    def set_max_limit_index(self, index: int) -> int:
        """Set ``maxfreq`` by OPP index (clamped; keeps limits consistent)."""
        index = self._table.clamp_index(index)
        self._max_limit_index = max(index, self._min_limit_index)
        if self._current_index > self._max_limit_index:
            self._current_index = self._max_limit_index
        return self._max_limit_index

    def set_min_limit_index(self, index: int) -> int:
        """Set ``minfreq`` by OPP index (clamped; keeps limits consistent)."""
        index = self._table.clamp_index(index)
        self._min_limit_index = min(index, self._max_limit_index)
        if self._current_index < self._min_limit_index:
            self._current_index = self._min_limit_index
        return self._min_limit_index

    def set_max_limit_mhz(self, frequency_mhz: float) -> float:
        """Set ``maxfreq`` to the fastest OPP not exceeding ``frequency_mhz``."""
        self.set_max_limit_index(self._table.floor_index(frequency_mhz))
        return self.max_limit_frequency_mhz

    def reset_limits(self) -> None:
        """Remove both frequency limits (full OPP range available)."""
        self._min_limit_index = 0
        self._max_limit_index = len(self._table) - 1

    # -- capacity --------------------------------------------------------------

    def capacity_at_index(self, index: int) -> float:
        """Compute capacity (mega work units / s) at a given OPP index."""
        freq = self._table.frequency_at(index)
        return freq * self.spec.perf_per_mhz * self.spec.core_count

    @property
    def current_capacity(self) -> float:
        """Compute capacity at the current OPP."""
        return self._freqs[self._current_index] * self.spec.perf_per_mhz * self.spec.core_count

    @property
    def max_capacity(self) -> float:
        """Compute capacity at the unconstrained top OPP."""
        return self.spec.max_capacity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cluster(name={self.name!r}, freq={self.current_frequency_mhz:.0f} MHz, "
            f"max_limit={self.max_limit_frequency_mhz:.0f} MHz, util={self._utilisation:.2f})"
        )
