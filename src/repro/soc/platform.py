"""Platform descriptions, including the paper's Exynos 9810 MPSoC.

Section III-A of the paper lists the exact DVFS tables of the Galaxy Note 9's
Exynos 9810:

* big cluster, 4x Mongoose M3, 18 OPPs from 650 MHz to 2704 MHz,
* LITTLE cluster, 4x Cortex-A55, 10 OPPs from 455 MHz to 1794 MHz,
* ARM Mali-G72 MP18 GPU, 6 OPPs from 260 MHz to 572 MHz.

Those tables are reproduced verbatim in :func:`exynos9810`.  Voltage curves
and power/thermal coefficients are not published for the part, so the
platform spec carries calibrated values chosen to land the simulator in the
power and temperature ranges the paper reports (about 3.5 W average and
52 degC big-cluster temperature for a mixed session under ``schedutil``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.soc.cluster import Cluster, ClusterKind, ClusterSpec
from repro.soc.frequency import OppTable
from repro.soc.thermal import ThermalNodeSpec

# Frequency tables quoted in Section III-A of the paper (MHz), fastest first
# in the text; stored ascending here.
EXYNOS9810_BIG_FREQUENCIES_MHZ: Tuple[float, ...] = (
    650.0,
    741.0,
    858.0,
    962.0,
    1066.0,
    1170.0,
    1261.0,
    1469.0,
    1586.0,
    1690.0,
    1794.0,
    1924.0,
    2002.0,
    2106.0,
    2314.0,
    2496.0,
    2652.0,
    2704.0,
)

EXYNOS9810_LITTLE_FREQUENCIES_MHZ: Tuple[float, ...] = (
    455.0,
    598.0,
    715.0,
    832.0,
    949.0,
    1053.0,
    1248.0,
    1456.0,
    1690.0,
    1794.0,
)

EXYNOS9810_GPU_FREQUENCIES_MHZ: Tuple[float, ...] = (
    260.0,
    299.0,
    338.0,
    455.0,
    546.0,
    572.0,
)


@dataclass
class PlatformSpec:
    """Complete static description of a simulated mobile platform.

    Attributes
    ----------
    name:
        Platform name (e.g. ``"exynos9810"``).
    cluster_specs:
        Cluster descriptions keyed by cluster name.
    thermal_nodes:
        Thermal node descriptions keyed by node name.  Every cluster has a
        node of the same name; additional nodes (e.g. ``"device"`` for the
        skin/battery virtual sensor) may be present.
    thermal_couplings:
        Pairwise thermal conductances between nodes in W/K, keyed by a
        ``(node_a, node_b)`` tuple.
    ambient_c:
        Default ambient temperature in Celsius.
    rest_of_platform_power_w:
        Power drawn by everything that is not a modelled cluster (display,
        memory, modem, sensors).  Treated as a constant floor.
    display_refresh_hz:
        Panel refresh rate; the paper's device is a 60 Hz panel.
    max_chip_temperature_c:
        Maximum junction temperature allowed before the thermal failsafe
        clamps frequencies (used to define ``PPDW_worst``).
    """

    name: str
    cluster_specs: Dict[str, ClusterSpec]
    thermal_nodes: Dict[str, ThermalNodeSpec]
    thermal_couplings: Dict[Tuple[str, str], float]
    ambient_c: float = 21.0
    rest_of_platform_power_w: float = 0.55
    display_refresh_hz: float = 60.0
    max_chip_temperature_c: float = 95.0

    def __post_init__(self) -> None:
        if not self.cluster_specs:
            raise ValueError("a platform needs at least one cluster")
        for cluster_name in self.cluster_specs:
            if cluster_name not in self.thermal_nodes:
                raise ValueError(
                    f"cluster {cluster_name!r} has no thermal node of the same name"
                )

    @property
    def cluster_names(self) -> List[str]:
        """Names of all clusters, in insertion order."""
        return list(self.cluster_specs)

    def build_clusters(self) -> Dict[str, Cluster]:
        """Instantiate fresh :class:`Cluster` objects for this platform."""
        return {name: Cluster(spec) for name, spec in self.cluster_specs.items()}

    def cluster_of_kind(self, kind: ClusterKind) -> Optional[str]:
        """Return the name of the first cluster of ``kind`` (or ``None``)."""
        for name, spec in self.cluster_specs.items():
            if spec.kind is kind:
                return name
        return None


def exynos9810(
    ambient_c: float = 21.0,
    rest_of_platform_power_w: float = 0.70,
) -> PlatformSpec:
    """Build the Exynos 9810 platform used throughout the paper.

    The OPP frequency tables are the exact ones listed in Section III-A.
    Voltage curves and power/thermal coefficients are calibrated (see module
    docstring) because they are not public.

    Parameters
    ----------
    ambient_c:
        Ambient temperature; the paper's thermal experiments were run in a
        21 degC thermostat-controlled room.
    rest_of_platform_power_w:
        Constant platform power floor (display, DRAM, modem).

    Returns
    -------
    PlatformSpec
        A fully populated platform description.
    """
    big_table = OppTable.from_frequencies(
        EXYNOS9810_BIG_FREQUENCIES_MHZ, v_min=0.70, v_max=1.15, curvature=1.5
    )
    little_table = OppTable.from_frequencies(
        EXYNOS9810_LITTLE_FREQUENCIES_MHZ, v_min=0.65, v_max=1.00, curvature=1.2
    )
    gpu_table = OppTable.from_frequencies(
        EXYNOS9810_GPU_FREQUENCIES_MHZ, v_min=0.70, v_max=0.95, curvature=1.2
    )

    cluster_specs = {
        "big": ClusterSpec(
            name="big",
            kind=ClusterKind.BIG_CPU,
            opp_table=big_table,
            core_count=4,
            # Calibrated so that the full cluster at max frequency and 100 %
            # utilisation draws roughly 7.5 W of dynamic power, in line with
            # published Exynos 9810 (Mongoose M3) measurements.
            capacitance_nf=0.72,
            leakage_w_per_v=0.150,
            leakage_temp_coeff=0.014,
            perf_per_mhz=1.0,
        ),
        "little": ClusterSpec(
            name="little",
            kind=ClusterKind.LITTLE_CPU,
            opp_table=little_table,
            core_count=4,
            # Cortex-A55 cluster tops out well below 1 W of dynamic power.
            capacitance_nf=0.115,
            leakage_w_per_v=0.020,
            leakage_temp_coeff=0.012,
            perf_per_mhz=0.45,
        ),
        "gpu": ClusterSpec(
            name="gpu",
            kind=ClusterKind.GPU,
            opp_table=gpu_table,
            core_count=18,
            # Mali-G72 MP18 peaks around 3.5-4 W on demanding 3D content.
            capacitance_nf=0.42,
            leakage_w_per_v=0.010,
            leakage_temp_coeff=0.012,
            perf_per_mhz=1.0,
        ),
    }

    thermal_nodes = {
        # Small silicon nodes heat within seconds; the device node is the
        # phone body/battery with a much larger thermal mass (minutes).  The
        # conductances are calibrated so that a sustained ~3.5 W session puts
        # the big cluster in the low-to-mid 50s Celsius and the device body in
        # the high 30s at the paper's 21 degC ambient, while a sustained
        # gaming load (7-9 W) pushes the big cluster towards its throttling
        # region -- both consistent with the traces in Figs. 3, 7 and 8.
        "big": ThermalNodeSpec(
            name="big", capacitance_j_per_k=3.0, conductance_to_ambient_w_per_k=0.008
        ),
        "little": ThermalNodeSpec(
            name="little", capacitance_j_per_k=2.5, conductance_to_ambient_w_per_k=0.010
        ),
        "gpu": ThermalNodeSpec(
            name="gpu", capacitance_j_per_k=3.5, conductance_to_ambient_w_per_k=0.010
        ),
        "device": ThermalNodeSpec(
            name="device", capacitance_j_per_k=45.0, conductance_to_ambient_w_per_k=0.160
        ),
    }

    thermal_couplings = {
        ("big", "little"): 0.035,
        ("big", "gpu"): 0.030,
        ("little", "gpu"): 0.040,
        ("big", "device"): 0.025,
        ("little", "device"): 0.050,
        ("gpu", "device"): 0.075,
    }

    return PlatformSpec(
        name="exynos9810",
        cluster_specs=cluster_specs,
        thermal_nodes=thermal_nodes,
        thermal_couplings=thermal_couplings,
        ambient_c=ambient_c,
        rest_of_platform_power_w=rest_of_platform_power_w,
        display_refresh_hz=60.0,
        max_chip_temperature_c=95.0,
    )


#: Factory registry of every simulated platform, keyed by the name used on
#: the ``platforms`` axis of a scenario matrix (see :mod:`repro.experiments`).
PLATFORM_LIBRARY: Dict[str, Callable[[], "PlatformSpec"]] = {}


def register_platform(name: str, factory: Callable[[], "PlatformSpec"]) -> None:
    """Register a platform factory under ``name`` (new sweep-axis values).

    Register at import time of a module that worker processes also import:
    under the ``spawn`` multiprocessing start method (macOS/Windows default)
    a registration made only inside a script's ``__main__`` guard is
    invisible to process-pool workers, so parallel sweeps on that platform
    would fail every cell.  Put the call at module level of an imported
    module, or run such sweeps with ``max_workers=1``.
    """
    if name in PLATFORM_LIBRARY:
        raise ValueError(f"platform {name!r} is already registered")
    PLATFORM_LIBRARY[name] = factory


def make_platform(name: str) -> "PlatformSpec":
    """Instantiate a platform from :data:`PLATFORM_LIBRARY` by name."""
    try:
        factory = PLATFORM_LIBRARY[name]
    except KeyError:
        raise ValueError(
            f"unknown platform {name!r}; available: {sorted(PLATFORM_LIBRARY)}"
        ) from None
    return factory()


def generic_two_cluster_soc(ambient_c: float = 25.0) -> PlatformSpec:
    """A small synthetic platform (one CPU cluster + one GPU) for tests.

    Useful for unit tests and examples that want a platform with fewer OPPs
    and therefore a much smaller RL state space.
    """
    cpu_table = OppTable.from_frequencies(
        (400.0, 800.0, 1200.0, 1600.0, 2000.0), v_min=0.7, v_max=1.0, curvature=1.2
    )
    gpu_table = OppTable.from_frequencies(
        (200.0, 400.0, 600.0), v_min=0.7, v_max=0.9, curvature=1.1
    )
    cluster_specs = {
        "cpu": ClusterSpec(
            name="cpu",
            kind=ClusterKind.BIG_CPU,
            opp_table=cpu_table,
            core_count=4,
            capacitance_nf=0.5,
            leakage_w_per_v=0.06,
            perf_per_mhz=1.0,
        ),
        "gpu": ClusterSpec(
            name="gpu",
            kind=ClusterKind.GPU,
            opp_table=gpu_table,
            core_count=8,
            capacitance_nf=0.4,
            leakage_w_per_v=0.02,
            perf_per_mhz=1.0,
        ),
    }
    thermal_nodes = {
        "cpu": ThermalNodeSpec(
            name="cpu", capacitance_j_per_k=5.0, conductance_to_ambient_w_per_k=0.06
        ),
        "gpu": ThermalNodeSpec(
            name="gpu", capacitance_j_per_k=5.0, conductance_to_ambient_w_per_k=0.06
        ),
        "device": ThermalNodeSpec(
            name="device", capacitance_j_per_k=80.0, conductance_to_ambient_w_per_k=0.40
        ),
    }
    thermal_couplings = {
        ("cpu", "gpu"): 0.25,
        ("cpu", "device"): 0.10,
        ("gpu", "device"): 0.10,
    }
    return PlatformSpec(
        name="generic-two-cluster",
        cluster_specs=cluster_specs,
        thermal_nodes=thermal_nodes,
        thermal_couplings=thermal_couplings,
        ambient_c=ambient_c,
        rest_of_platform_power_w=0.4,
        display_refresh_hz=60.0,
    )


register_platform("exynos9810", exynos9810)
register_platform("generic-two-cluster", generic_two_cluster_soc)
