"""repro: reproduction of "User Interaction Aware Reinforcement Learning for
Power and Thermal Efficiency of CPU-GPU Mobile MPSoCs" (Dey et al., DATE 2020).

The package is organised as:

* :mod:`repro.core` -- the paper's contribution: the ``Next`` agent (frame
  window, PPDW metric, Q-learning DVFS) and its offline/federated training
  extensions.
* :mod:`repro.soc` -- the simulated Exynos 9810 substrate: clusters with the
  paper's exact DVFS tables, power model, thermal network and sensors.
* :mod:`repro.graphics` -- the Android display pipeline substrate: VSync,
  triple buffering, frame rendering and FPS accounting.
* :mod:`repro.workloads` -- the applications and the user: phase-machine app
  models for the six evaluated apps, the interaction model and session
  generation.
* :mod:`repro.governors` -- the baselines: ``schedutil`` (EAS), simple
  reference governors and the Int. QoS PM scheme of Pathania et al.
* :mod:`repro.sim` -- the simulation engine, recorders and experiment
  runners.
* :mod:`repro.analysis` -- metric aggregation and text-table rendering used
  by the benchmark harness.
* :mod:`repro.experiments` -- the parallel scenario-matrix harness:
  declarative factorial sweeps (governors x workloads x platforms x seeds)
  with deterministic cell seeding, process-pool execution, result caching
  and replication-aware aggregation (the ``repro-sweep`` CLI).

Quickstart::

    from repro import make_governor, run_app_session

    result = run_app_session("facebook", make_governor("schedutil"),
                             duration_s=60.0, seed=1)
    print(result.summary.average_power_w)
"""

from repro.core import (
    AgentConfig,
    FrameWindowConfig,
    FrameWindowMonitor,
    NextAgent,
    NextGovernor,
    PpdwBounds,
    QLearningConfig,
    RewardConfig,
    compute_ppdw,
    compute_reward,
)
from repro.governors import (
    Governor,
    GovernorObservation,
    IntQosGovernor,
    SchedutilGovernor,
    SchedutilScaler,
)
from repro.experiments import (
    CellResult,
    ScenarioCell,
    ScenarioMatrix,
    SweepResult,
    SweepRunner,
    WorkloadSpec,
    named_matrix,
    run_matrix,
)
from repro.sim import (
    GovernorComparison,
    Recorder,
    SessionResult,
    SessionWorkload,
    Simulation,
    SimulationConfig,
    TrainingResult,
    compare_governors_on_trace,
    execute_session,
    make_governor,
    run_app_session,
    run_trace,
    train_next_governor,
)
from repro.soc import (
    PlatformSpec,
    SocSimulator,
    exynos9810,
    generic_two_cluster_soc,
    make_platform,
)
from repro.workloads import (
    APP_LIBRARY,
    AppModel,
    SessionGenerator,
    TraceRecorder,
    WorkloadTrace,
    make_app,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "NextAgent",
    "NextGovernor",
    "AgentConfig",
    "FrameWindowConfig",
    "FrameWindowMonitor",
    "QLearningConfig",
    "RewardConfig",
    "PpdwBounds",
    "compute_ppdw",
    "compute_reward",
    # governors
    "Governor",
    "GovernorObservation",
    "SchedutilGovernor",
    "SchedutilScaler",
    "IntQosGovernor",
    # soc
    "PlatformSpec",
    "SocSimulator",
    "exynos9810",
    "generic_two_cluster_soc",
    "make_platform",
    # workloads
    "APP_LIBRARY",
    "AppModel",
    "make_app",
    "SessionGenerator",
    "TraceRecorder",
    "WorkloadTrace",
    # sim
    "Simulation",
    "SimulationConfig",
    "SessionWorkload",
    "Recorder",
    "SessionResult",
    "TrainingResult",
    "GovernorComparison",
    "execute_session",
    "run_app_session",
    "run_trace",
    "train_next_governor",
    "compare_governors_on_trace",
    "make_governor",
    # experiments
    "ScenarioMatrix",
    "ScenarioCell",
    "WorkloadSpec",
    "SweepRunner",
    "SweepResult",
    "CellResult",
    "named_matrix",
    "run_matrix",
]
