"""Observability: span tracing, metrics, hot-loop profiling, reports.

The telemetry substrate under the ROADMAP's fleet-service rung.  Three
independent, individually opt-in layers with one shared invariant --
none of them may perturb simulated results:

* :mod:`repro.obs.trace` -- span-based run tracing to a schema-versioned
  ``trace.jsonl``, inherited by pool workers via ``REPRO_TRACE``;
* :mod:`repro.obs.metrics` -- process-wide counters/gauges/histograms,
  flushed into trace footers and ``shard-status.json``;
* :mod:`repro.obs.profile` -- a sampling profiler for the 60 Hz hot
  loops, a strict no-op unless activated;
* :mod:`repro.obs.report` / :mod:`repro.obs.export` -- timeline +
  metrics rendering and Chrome trace-event export for Perfetto.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    metrics,
    reset_metrics,
)
from repro.obs.profile import (
    HotLoopProfiler,
    activate_profiling,
    active_profiler,
    deactivate_profiling,
    profiled,
)
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.obs.trace import (
    TRACE_BASENAME,
    TRACE_ENV,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    TraceSink,
    activate_tracing,
    active_tracer,
    deactivate_tracing,
    emit_event,
    flush_task_metrics,
    maybe_span,
    merge_traces,
    read_trace,
    traced,
    tracing_active,
)

__all__ = [
    "MetricsRegistry",
    "merge_snapshots",
    "metrics",
    "reset_metrics",
    "HotLoopProfiler",
    "activate_profiling",
    "active_profiler",
    "deactivate_profiling",
    "profiled",
    "ProgressEvent",
    "ProgressTracker",
    "TRACE_BASENAME",
    "TRACE_ENV",
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "TraceSink",
    "activate_tracing",
    "active_tracer",
    "deactivate_tracing",
    "emit_event",
    "flush_task_metrics",
    "maybe_span",
    "merge_traces",
    "read_trace",
    "traced",
    "tracing_active",
]
