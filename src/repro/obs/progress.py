"""One source of truth for sweep progress: done/total/ETA/retry accounting.

Before this module the CLI's progress printer and the shard status
writer each re-derived "how far along is this run" from a delivered
:class:`CellResult`, and the printer drifted from the runner's
retry-aware accounting once PR 9 made deliveries carry retry lineages.
:class:`ProgressTracker` owns that derivation once: every delivery is
folded into a :class:`ProgressEvent`, the printer formats that event,
the shard status writer reads its counters, and when tracing is active
the same event is appended to the run's trace -- so what the user sees,
what ``shard-status.json`` says and what ``repro-sweep report`` replays
are one record, not three reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.trace import emit_event


@dataclass(frozen=True)
class ProgressEvent:
    """One delivery, fully accounted: position, ETA and retry counters."""

    done: int
    total: int
    status: str
    label: str
    origin: str
    eta_s: float
    attempts: int
    retries_total: int
    quarantined_total: int

    def format_line(self, prefix: str = "") -> str:
        """The CLI progress line; retry counts shown only when present."""
        retries = f", {self.attempts} retries" if self.attempts else ""
        return (
            f"  {prefix}[{self.done}/{self.total}] {self.status:5s} "
            f"{self.label} ({self.origin}, ~{self.eta_s:.1f}s left{retries})"
        )


class ProgressTracker:
    """Folds delivered cell results into progress events.

    ``costs`` is a ``RemainingCost``-style accumulator (``deliver()``,
    ``remaining_s``, ``outstanding``) -- the shard cost model -- so the
    ETA reflects the work actually left rather than a naive done/total
    extrapolation that training-heavy cells would skew.  The displayed
    estimate divides by the *effective* parallelism: the worker count
    clamped to the cells still outstanding, since once the pool drains
    below ``workers`` pending cells the tail runs at that lower width.
    """

    def __init__(self, costs: Any, workers: int = 1, emit: bool = True) -> None:
        self._costs = costs
        self._workers = max(1, workers or 1)
        self._emit = emit
        self.retries_total = 0
        self.quarantined_total = 0
        self.cached_total = 0
        self.completed_total = 0
        self.failed_total = 0

    def note(self, done: int, total: int, result: Any) -> ProgressEvent:
        """Account one delivered cell result and return its progress event.

        Per-cell counters bump only on the cell's *first* delivery (the
        cost accumulator's ``deliver`` contract), so a duplicate-fingerprint
        expansion -- which delivers the same cached cell twice -- is counted
        once, matching the shard status file's "distinct cells" semantics.
        Retry attempts accumulate on every delivery: each delivery carries
        its own lineage.
        """
        first = self._costs.deliver(result)
        attempts = len(result.attempts or [])
        self.retries_total += attempts
        if first:
            if result.error_kind == "permanent":
                self.quarantined_total += 1
            if result.from_cache:
                self.cached_total += 1
            if result.ok:
                self.completed_total += 1
            else:
                self.failed_total += 1
        origin = "cached" if result.from_cache else f"{result.elapsed_s:.1f}s"
        eta = self._costs.remaining_s / max(
            1, min(self._workers, self._costs.outstanding)
        )
        event = ProgressEvent(
            done=done,
            total=total,
            status=result.status,
            label=result.cell.label(),
            origin=origin,
            eta_s=eta,
            attempts=attempts,
            retries_total=self.retries_total,
            quarantined_total=self.quarantined_total,
        )
        if self._emit:
            emit_event(
                "progress",
                done=done,
                total=total,
                status=result.status,
                label=event.label,
                eta_s=round(eta, 3),
                attempts=attempts,
            )
        return event
