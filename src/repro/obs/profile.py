"""Opt-in sampling profiler for the 60 Hz hot loops.

The Fig. 1 hot loop (``Simulation._run_ticks`` and its batched
counterpart) binds its stage callables to locals before the tick loop.
The profiler exploits that: when enabled, the loop rebinds each stage
callable through :meth:`HotLoopProfiler.wrap`, a closure that times
every ``stride``-th call into a per-stage bucket and passes results
through untouched -- bit-identity holds by construction because the
wrapped function *is* the original function plus two clock reads.

When disabled (the default), :func:`active_profiler` returns ``None``
and the loops take their original, unwrapped path: the cost is one
module-global read per ``_run_ticks`` call and zero per-tick work or
allocations.  That is the "compiled out to a no-op" contract the
overhead benchmark pins.

The closures read ``time.perf_counter`` directly -- diagnostic timing
that is reported but never folded into results -- and are allowlisted in
``[tool.repro-lint.REP002]`` like the runner's ``elapsed_s`` sites.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterator, Optional

from contextlib import contextmanager

#: Canonical stage names, in hot-loop order.
STAGES = ("workload", "pipeline", "power_thermal", "scaler", "governor", "recorder")


class HotLoopProfiler:
    """Buckets hot-loop time into named stages at a configurable stride."""

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.calls: Dict[str, int] = {}
        self.sampled: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}

    def wrap(self, stage: str, fn: Callable[..., Any]) -> Callable[..., Any]:
        """Return ``fn`` instrumented to time every ``stride``-th call."""
        calls = self.calls
        sampled = self.sampled
        wall_s = self.wall_s
        calls.setdefault(stage, 0)
        sampled.setdefault(stage, 0)
        wall_s.setdefault(stage, 0.0)
        stride = self.stride

        def timed(*args: Any, **kwargs: Any) -> Any:
            # time.perf_counter is read as an attribute (not a pre-bound
            # local) so the REP002 linter *sees* this wall-clock site and
            # the pyproject allowlist entry visibly sanctions it.
            count = calls[stage] + 1
            calls[stage] = count
            if count % stride:
                return fn(*args, **kwargs)
            started = time.perf_counter()
            result = fn(*args, **kwargs)
            wall_s[stage] += time.perf_counter() - started
            sampled[stage] += 1
            return result

        return timed

    def snapshot(self) -> Dict[str, Any]:
        stages = sorted(set(self.calls) | set(self.wall_s))
        return {
            "stride": self.stride,
            "stages": {
                stage: {
                    "calls": self.calls.get(stage, 0),
                    "sampled": self.sampled.get(stage, 0),
                    "wall_s": self.wall_s.get(stage, 0.0),
                }
                for stage in stages
            },
        }


#: ``None`` = profiling disabled: the hot loops take their unwrapped path.
_active_profiler: Optional[HotLoopProfiler] = None


def activate_profiling(stride: int = 1) -> HotLoopProfiler:
    global _active_profiler
    _active_profiler = HotLoopProfiler(stride=stride)
    return _active_profiler


def deactivate_profiling() -> None:
    global _active_profiler
    _active_profiler = None


def active_profiler() -> Optional[HotLoopProfiler]:
    return _active_profiler


@contextmanager
def profiled(stride: int = 1) -> Iterator[HotLoopProfiler]:
    profiler = activate_profiling(stride=stride)
    try:
        yield profiler
    finally:
        deactivate_profiling()
