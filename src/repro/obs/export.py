"""Chrome trace-event export: load a run's trace in chrome://tracing / Perfetto.

The Chrome trace-event format is the lingua franca of timeline viewers:
complete events (``ph: "X"``) with microsecond timestamps, grouped by
pid/tid.  Span events map directly; point events become instants
(``ph: "i"``).  Timestamps are rebased to the earliest event so the
viewer opens at t=0 instead of the unix epoch.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.persistence import atomic_write_json


def chrome_trace_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert parsed trace events into a Chrome trace-event document."""
    starts: List[float] = []
    for event in events:
        if event.get("kind") == "span":
            starts.append(event.get("start_s", 0.0))
        elif event.get("kind") == "event":
            starts.append(event.get("wall_s", 0.0))
    base = min(starts) if starts else 0.0
    trace_events: List[Dict[str, Any]] = []
    for event in events:
        kind = event.get("kind")
        pid = event.get("pid", 0)
        if kind == "span":
            start = event.get("start_s", 0.0)
            end = event.get("end_s", start)
            args: Dict[str, Any] = dict(event.get("attrs") or {})
            args["span"] = event.get("span")
            trace_events.append(
                {
                    "ph": "X",
                    "name": event.get("name", "?"),
                    "cat": "span",
                    "ts": (start - base) * 1e6,
                    "dur": max(0.0, (end - start)) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "args": args,
                }
            )
        elif kind == "event":
            trace_events.append(
                {
                    "ph": "i",
                    "name": event.get("name", "?"),
                    "cat": "event",
                    "ts": (event.get("wall_s", base) - base) * 1e6,
                    "pid": pid,
                    "tid": pid,
                    "s": "p",
                    "args": dict(event.get("attrs") or {}),
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    events: List[Dict[str, Any]], path: str
) -> Dict[str, Any]:
    """Write the Chrome trace-event document atomically; returns it."""
    document = chrome_trace_events(events)
    atomic_write_json(path, document)
    return document


def first_span_named(
    events: List[Dict[str, Any]], name: str
) -> Optional[Dict[str, Any]]:
    """Convenience for smoke checks: the first closed span with ``name``."""
    for event in events:
        if event.get("kind") == "span" and event.get("name") == name:
            return event
    return None
