"""Span-based run tracing: schema-versioned JSONL events per run.

A sweep today spans processes (pool workers), machines (shards) and
retries; the only durable record of *where time went* is whatever the CLI
printed.  This module gives every run an append-only ``trace.jsonl``:

* a :class:`Tracer` opens nested spans (``sweep > cell > train``,
  ``shard run``, ``round > device_batch``, ``merge``) and appends one
  complete, schema-versioned JSON event per span/point event through
  :func:`repro.core.persistence.append_jsonl` (single ``write()`` per
  line, so concurrent writers interleave whole lines, never bytes);
* pool workers inherit the trace destination through the
  ``REPRO_TRACE`` environment variable exactly like fault plans inherit
  ``REPRO_FAULT_PLAN`` -- activation exports, workers lazily resolve and
  cache on the env text, deactivation clears;
* all wall-clock reads route through the REP002-allowlisted
  :mod:`repro.reliability.clock` seams, so the determinism linter keeps
  its "no raw clock reads" guarantee with tracing in the tree.

The non-negotiable invariant: tracing must never perturb results.  The
tracer touches no RNG, no simulated clock and no recorded value; parity
of ``sample_stream_hash`` with tracing on/off is pinned by the golden,
chaos and differential suites.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from contextlib import contextmanager

from repro.core.persistence import append_jsonl, atomic_write_text, quarantine_entry
from repro.reliability.clock import wall_now

#: Environment variable carrying the trace destination to pool workers.
TRACE_ENV = "REPRO_TRACE"

#: Version stamp of the event schema; bumped on breaking changes.
TRACE_SCHEMA_VERSION = 1

#: Conventional basename of a per-run trace file.
TRACE_BASENAME = "trace.jsonl"


class TraceSink:
    """Where events go and which foreign span adopts this process's roots.

    ``root`` is the span id of the orchestrator's enclosing span: worker
    processes have an empty span stack, so their top-level spans parent
    to ``root`` and the report stitches one tree across processes.
    """

    def __init__(self, path: str, root: Optional[str] = None) -> None:
        self.path = path
        self.root = root

    def to_json(self) -> str:
        return json.dumps({"path": self.path, "root": self.root}, sort_keys=True)

    @classmethod
    def parse(cls, text: str) -> "TraceSink":
        """Parse an env value: inline JSON (starts with ``{``) or a bare path."""
        stripped = text.strip()
        if stripped.startswith("{"):
            data = json.loads(stripped)
            return cls(path=str(data["path"]), root=data.get("root"))
        return cls(path=stripped)


class Span:
    """One open span; emitted as a single complete event when it ends."""

    __slots__ = ("name", "span_id", "parent_id", "start_s", "end_s", "attrs")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: Optional[str],
        start_s: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs

    def note(self, key: str, value: Any) -> None:
        """Attach an attribute that is only known after the span opened."""
        self.attrs[key] = value

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return end - self.start_s


class Tracer:
    """Appends span / point / metrics events for one process to a sink.

    Span ids are ``<pid-hex>-<ms-suffix>:<counter>``: unique enough to
    stitch traces from concurrent workers and merged shards without any
    randomness (the trace is diagnostics, never folded into results).
    """

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self._stack: List[Span] = []
        self._counter = 0
        pid = os.getpid()
        self._prefix = f"{pid:x}-{int(wall_now() * 1000.0) & 0xFFFFFF:06x}"
        self._pid = pid
        self._header_written = False

    # -- low-level emission ---------------------------------------------------------

    def _emit(self, payload: Dict[str, Any]) -> None:
        if not self._header_written:
            self._header_written = True
            append_jsonl(
                self.sink.path,
                {
                    "kind": "header",
                    "schema": TRACE_SCHEMA_VERSION,
                    "pid": self._pid,
                    "prefix": self._prefix,
                    "wall_s": wall_now(),
                },
            )
        payload.setdefault("pid", self._pid)
        append_jsonl(self.sink.path, payload)

    def _next_id(self) -> str:
        self._counter += 1
        return f"{self._prefix}:{self._counter}"

    # -- spans ----------------------------------------------------------------------

    def begin(self, name: str, **attrs: Any) -> Span:
        """Open a span nested under the innermost open span (or the sink root)."""
        parent = self._stack[-1].span_id if self._stack else self.sink.root
        span = Span(name, self._next_id(), parent, wall_now(), dict(attrs))
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` and append its complete event."""
        span.end_s = wall_now()
        if span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        self._emit(
            {
                "kind": "span",
                "name": span.name,
                "span": span.span_id,
                "parent": span.parent_id,
                "start_s": span.start_s,
                "end_s": span.end_s,
                "attrs": span.attrs,
            }
        )
        return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def event(self, name: str, **attrs: Any) -> None:
        """Append a point event (retry, progress, fault) at the current wall time."""
        parent = self._stack[-1].span_id if self._stack else self.sink.root
        self._emit(
            {
                "kind": "event",
                "name": name,
                "parent": parent,
                "wall_s": wall_now(),
                "attrs": dict(attrs),
            }
        )

    def flush_metrics(
        self,
        snapshot: Dict[str, Any],
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append a metrics footer (and optional profiler snapshot)."""
        payload: Dict[str, Any] = {
            "kind": "metrics",
            "wall_s": wall_now(),
            "metrics": snapshot,
        }
        if profile is not None:
            payload["profile"] = profile
        self._emit(payload)

    # -- cross-process root adoption ------------------------------------------------

    def adopt_root(self, span: Span) -> None:
        """Export ``span`` as the parent for spans opened in pool workers.

        Must run before the executor is created so worker processes
        inherit the updated environment value.
        """
        self.set_root(span.span_id)

    def set_root(self, root: Optional[str]) -> None:
        """Set (or restore) the exported worker-parent span id."""
        global _active_source
        self.sink.root = root
        text = self.sink.to_json()
        os.environ[TRACE_ENV] = text
        if _active_tracer is self:
            # Keep the lazy-resolution cache coherent: the env text changed
            # but this tracer (and its open span stack) stays the active one.
            _active_source = text


# ---------------------------------------------------------------------------------
# Activation: module global + env mirror, exactly like reliability.faults.
# ---------------------------------------------------------------------------------

# ``False`` means "not yet resolved from the environment"; ``None`` means
# "resolved: tracing is off".  The cached source text detects env changes.
_active_tracer: Any = False
_active_source: Optional[str] = None


def activate_tracing(path: str, root: Optional[str] = None) -> Tracer:
    """Enable tracing to ``path`` in this process and export to children."""
    global _active_tracer, _active_source
    sink = TraceSink(path, root=root)
    tracer = Tracer(sink)
    _active_tracer = tracer
    _active_source = sink.to_json()
    os.environ[TRACE_ENV] = _active_source
    return tracer


def deactivate_tracing() -> None:
    """Disable tracing in this process and stop exporting to children."""
    global _active_tracer, _active_source
    _active_tracer = None
    _active_source = None
    os.environ.pop(TRACE_ENV, None)


def active_tracer() -> Optional[Tracer]:
    """The process-wide tracer, lazily resolved from ``REPRO_TRACE``.

    Workers never call :func:`activate_tracing`; their first span
    resolves the sink inherited through the pool's environment.  The
    result is cached keyed on the env text so repeated calls are one
    dict lookup and an equality check.
    """
    global _active_tracer, _active_source
    text = os.environ.get(TRACE_ENV)
    if _active_tracer is not False and text == _active_source:
        if _active_tracer is None or _active_tracer._pid == os.getpid():
            return _active_tracer
        # A fork()ed pool worker inherited the parent's live tracer --
        # parent pid, span-id prefix, open span stack and all.  Writing
        # through it would collide span ids across workers and parent
        # worker spans to the wrong process's stack, so fall through and
        # rebuild from the env: the child gets its own prefix and parents
        # its top-level spans to the exported root, exactly like a
        # spawn()ed worker resolving the sink for the first time.
    if text is None:
        _active_tracer = None
        _active_source = None
        return None
    try:
        sink = TraceSink.parse(text)
    except (ValueError, KeyError, TypeError):
        _active_tracer = None
        _active_source = text
        return None
    _active_tracer = Tracer(sink)
    _active_source = text
    return _active_tracer


def tracing_active() -> bool:
    return active_tracer() is not None


@contextmanager
def traced(path: str) -> Iterator[Tracer]:
    """Scoped activation for tests and harnesses."""
    tracer = activate_tracing(path)
    try:
        yield tracer
    finally:
        deactivate_tracing()


@contextmanager
def maybe_span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """A span when tracing is active, a no-op otherwise.

    The inactive path costs one env read and allocates nothing, so
    instrumented call sites stay on their untraced fast path.
    """
    tracer = active_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span


def emit_event(name: str, **attrs: Any) -> None:
    """Append a point event iff tracing is active."""
    tracer = active_tracer()
    if tracer is not None:
        tracer.event(name, **attrs)


def flush_task_metrics() -> None:
    """Worker-side footer: flush this process's metric deltas after one task.

    Pool workers can be recycled without notice, so each finished task
    flushes whatever metrics it accumulated into the trace and resets the
    registry (making every footer a delta; the report sums footers across
    processes).  A no-op in the orchestrator -- which flushes one
    cumulative footer per run -- and whenever tracing is off.
    """
    tracer = active_tracer()
    if tracer is None:
        return
    from repro.reliability.faults import in_worker_process

    if not in_worker_process():
        return
    from repro.obs.metrics import metrics, reset_metrics

    registry = metrics()
    if registry.empty():
        return
    tracer.flush_metrics(registry.snapshot())
    reset_metrics()


# ---------------------------------------------------------------------------------
# Reading and merging
# ---------------------------------------------------------------------------------


def read_trace(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Parse a trace file, tolerating a torn tail.

    A process killed mid-append leaves a truncated final line; readers
    skip unparseable lines and report how many were skipped instead of
    raising -- the same posture the shard merge takes toward torn cache
    entries.  A header from a *newer* schema raises: silently misreading
    a future format is worse than a loud error.
    """
    events: List[Dict[str, Any]] = []
    torn = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except ValueError:
                torn += 1
                continue
            if not isinstance(event, dict) or "kind" not in event:
                torn += 1
                continue
            if event["kind"] == "header":
                schema = event.get("schema", 0)
                if schema > TRACE_SCHEMA_VERSION:
                    raise ValueError(
                        f"trace schema {schema} is newer than supported "
                        f"{TRACE_SCHEMA_VERSION}: {path}"
                    )
            events.append(event)
    return events, torn


def merge_traces(sources: List[str], destination: str) -> Dict[str, int]:
    """Concatenate per-shard traces into one file, quarantining dead ones.

    A source that exists but yields no parseable events is quarantined as
    ``<path>.bad`` (the shared ``.bad`` idiom); a merely torn tail is
    tolerated and counted.  The merged file is published atomically so a
    concurrent reader never observes a half-merged trace.
    """
    merged: List[Dict[str, Any]] = []
    counters = {"sources": 0, "events": 0, "torn_lines": 0, "quarantined": 0}
    for source in sources:
        if not os.path.exists(source):
            continue
        try:
            events, torn = read_trace(source)
        except OSError:
            continue
        counters["torn_lines"] += torn
        if not events and torn:
            quarantine_entry(source)
            counters["quarantined"] += 1
            continue
        counters["sources"] += 1
        counters["events"] += len(events)
        merged.extend(events)
    lines = [json.dumps(event, sort_keys=True) for event in merged]
    atomic_write_text(destination, "\n".join(lines) + ("\n" if lines else ""))
    return counters
