"""Render a run timeline and metrics summary from a ``trace.jsonl``.

The span events in a trace are flat, complete records (one line per
closed span, possibly from several processes and several merged shards).
:func:`build_span_tree` stitches them back into a forest by parent id --
worker spans hang off the orchestrator span they inherited through the
``REPRO_TRACE`` root -- and the text renderer draws the indented
timeline with durations, child counts and retry annotations that
``repro-sweep report`` prints.  Metrics footers from every process are
re-aggregated through :func:`repro.obs.metrics.merge_snapshots`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import merge_snapshots

#: Spans longer than this render with their duration highlighted first.
_TREE_INDENT = "  "


def build_span_tree(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Stitch flat span events into a forest of ``{.., "children": [..]}``.

    A span whose parent id never closed (the parent process was killed,
    or the parent lives in a shard trace that was not merged) becomes a
    root rather than being dropped: partial traces still render.
    """
    nodes: Dict[str, Dict[str, Any]] = {}
    order: List[Dict[str, Any]] = []
    for event in events:
        if event.get("kind") != "span":
            continue
        node = {
            "name": event.get("name", "?"),
            "span": event.get("span"),
            "parent": event.get("parent"),
            "start_s": event.get("start_s", 0.0),
            "end_s": event.get("end_s", 0.0),
            "pid": event.get("pid"),
            "attrs": event.get("attrs") or {},
            "children": [],
        }
        node["duration_s"] = (node["end_s"] or 0.0) - (node["start_s"] or 0.0)
        if node["span"] is not None:
            nodes[node["span"]] = node
        order.append(node)
    roots: List[Dict[str, Any]] = []
    for node in order:
        parent = nodes.get(node["parent"]) if node["parent"] else None
        if parent is not None and parent is not node:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in order:
        node["children"].sort(key=lambda child: (child["start_s"], str(child["span"])))
    roots.sort(key=lambda node: (node["start_s"], str(node["span"])))
    return roots


def collect_point_events(
    events: List[Dict[str, Any]], name: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Point events (retries, faults, progress), optionally by name."""
    found = [event for event in events if event.get("kind") == "event"]
    if name is not None:
        found = [event for event in found if event.get("name") == name]
    return found


def merged_metrics(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate every metrics footer in the trace into one snapshot."""
    return merge_snapshots(
        event.get("metrics") for event in events if event.get("kind") == "metrics"
    )


def merged_profile(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """Sum profiler snapshots from every footer that carried one."""
    merged: Optional[Dict[str, Any]] = None
    for event in events:
        if event.get("kind") != "metrics" or "profile" not in event:
            continue
        profile = event["profile"]
        if merged is None:
            merged = {"stride": profile.get("stride", 1), "stages": {}}
        for stage, stats in (profile.get("stages") or {}).items():
            bucket = merged["stages"].setdefault(
                stage, {"calls": 0, "sampled": 0, "wall_s": 0.0}
            )
            bucket["calls"] += stats.get("calls", 0)
            bucket["sampled"] += stats.get("sampled", 0)
            bucket["wall_s"] += stats.get("wall_s", 0.0)
    return merged


def report_payload(
    events: List[Dict[str, Any]], torn_lines: int = 0
) -> Dict[str, Any]:
    """The machine-readable report (``repro-sweep report --format json``)."""
    spans = build_span_tree(events)
    retries = collect_point_events(events, "retry")
    return {
        "events": len(events),
        "torn_lines": torn_lines,
        "processes": sorted(
            {event["pid"] for event in events if "pid" in event}
        ),
        "spans": spans,
        "retries": retries,
        "metrics": merged_metrics(events),
        "profile": merged_profile(events),
    }


def _render_node(
    node: Dict[str, Any],
    retry_parents: Dict[str, int],
    depth: int,
    lines: List[str],
) -> None:
    attrs = node["attrs"]
    label = attrs.get("label") or attrs.get("matrix") or attrs.get("fingerprint")
    suffix = f" {label}" if label else ""
    retries = retry_parents.get(node["span"], 0)
    retry_note = f"  [{retries} retries]" if retries else ""
    status = attrs.get("status")
    status_note = f"  status={status}" if status else ""
    lines.append(
        f"{_TREE_INDENT * depth}{node['name']:<14s} {node['duration_s']:8.3f}s"
        f"{suffix}{status_note}{retry_note}"
    )
    for child in node["children"]:
        _render_node(child, retry_parents, depth + 1, lines)


def render_text(events: List[Dict[str, Any]], torn_lines: int = 0) -> str:
    """The human-readable report (``repro-sweep report``)."""
    payload = report_payload(events, torn_lines)
    retry_parents: Dict[str, int] = {}
    for event in payload["retries"]:
        parent = event.get("parent")
        if parent:
            retry_parents[parent] = retry_parents.get(parent, 0) + 1
    lines = [
        f"trace: {payload['events']} events from "
        f"{len(payload['processes'])} process(es)"
        + (f", {torn_lines} torn line(s) skipped" if torn_lines else ""),
        "",
        "span tree:",
    ]
    if payload["spans"]:
        for root in payload["spans"]:
            _render_node(root, retry_parents, 1, lines)
    else:
        lines.append(f"{_TREE_INDENT}(no spans)")
    metrics = payload["metrics"]
    counters: Dict[str, float] = metrics.get("counters", {})
    gauges: Dict[str, float] = metrics.get("gauges", {})
    histograms: Dict[str, Dict[str, float]] = metrics.get("histograms", {})
    if counters or gauges or histograms:
        lines.append("")
        lines.append("metrics:")
        for name, value in counters.items():
            lines.append(f"{_TREE_INDENT}{name} = {value:g}")
        for name, value in gauges.items():
            lines.append(f"{_TREE_INDENT}{name} = {value:g} (gauge)")
        for name, summary in histograms.items():
            count = summary.get("count", 0)
            mean = summary.get("sum", 0.0) / count if count else 0.0
            lines.append(
                f"{_TREE_INDENT}{name}: n={count:g} mean={mean:g} "
                f"min={summary.get('min', 0):g} max={summary.get('max', 0):g}"
            )
    profile = payload["profile"]
    if profile:
        lines.append("")
        lines.append(f"hot-loop profile (stride {profile.get('stride', 1)}):")
        stages: List[Tuple[str, Dict[str, Any]]] = sorted(
            (profile.get("stages") or {}).items(),
            key=lambda item: -item[1].get("wall_s", 0.0),
        )
        total = sum(stats.get("wall_s", 0.0) for _, stats in stages) or 1.0
        for stage, stats in stages:
            wall = stats.get("wall_s", 0.0)
            lines.append(
                f"{_TREE_INDENT}{stage:<14s} {wall:8.4f}s "
                f"({100.0 * wall / total:5.1f}%) over {stats.get('sampled', 0)} samples"
            )
    return "\n".join(lines)
