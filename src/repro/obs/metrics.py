"""Process-wide metrics registry: counters, gauges and bounded histograms.

Counters accumulate (cache hits, retries by classification, faults
fired, watchdog reschedules, quarantined entries); gauges hold the last
written value (device-ticks/s of the most recent batch); histograms keep
a bounded summary (count/sum/min/max) so observing per-segment lane
occupancy for a million segments costs four floats, not a list.

The registry is always on -- dict updates at per-cell frequency are
noise -- and is *flushed* only when tracing is active: into the run's
trace footer and into ``shard-status.json``.  Snapshots are plain JSON
documents; :func:`merge_snapshots` re-aggregates footers from several
processes or shards into one summary for the report CLI.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional


class MetricsRegistry:
    """Mutable counters/gauges/histograms for one process."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        summary = self.histograms.get(name)
        if summary is None:
            self.histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        summary["count"] += 1
        summary["sum"] += value
        if value < summary["min"]:
            summary["min"] = value
        if value > summary["max"]:
            summary["max"] = value

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready copy with deterministically ordered keys."""
        return {
            "counters": {key: self.counters[key] for key in sorted(self.counters)},
            "gauges": {key: self.gauges[key] for key in sorted(self.gauges)},
            "histograms": {
                key: dict(self.histograms[key]) for key in sorted(self.histograms)
            },
        }

    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)


#: The process-wide registry; workers each have their own and flush it
#: into their trace footer, so the report sums across processes.
_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    return _registry


def reset_metrics() -> None:
    _registry.reset()


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Aggregate footer snapshots: counters/histograms sum, gauges keep last."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            merged.inc(name, value)
        for name, value in (snapshot.get("gauges") or {}).items():
            merged.set_gauge(name, value)
        for name, summary in (snapshot.get("histograms") or {}).items():
            existing = merged.histograms.get(name)
            if existing is None:
                merged.histograms[name] = dict(summary)
                continue
            existing["count"] += summary.get("count", 0)
            existing["sum"] += summary.get("sum", 0.0)
            existing["min"] = min(existing["min"], summary.get("min", existing["min"]))
            existing["max"] = max(existing["max"], summary.get("max", existing["max"]))
    return merged.snapshot()
