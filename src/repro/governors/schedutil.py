"""The ``schedutil`` (EAS) frequency scaler and its no-op policy wrapper.

The paper's primary baseline is Android's only stock governor on the Note 9
kernel: ``schedutil``, driven by Energy Aware Scheduling.  Its defining
behaviour is that the frequency of every cluster follows *utilisation* with a
25 % headroom (``next_f = 1.25 * f_curr * util``), ramps up immediately and
ramps down after a short rate-limit window.  Crucially it knows nothing about
frames: during an application loading phase or a background-heavy music
session the utilisation -- and therefore frequency, power and temperature --
stays high even though the user-visible frame rate is near zero.  That gap is
exactly what the Next agent exploits.

Two classes live here:

* :class:`SchedutilScaler` -- the per-tick frequency selection *within the
  current limits*.  The simulation engine always runs one, whatever policy
  governor is active, because that is how a ``maxfreq``-capping agent like
  Next coexists with the stock governor on real devices.
* :class:`SchedutilGovernor` -- the policy layer for the stock configuration:
  it simply keeps all limits wide open.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.governors.base import Governor, GovernorObservation
from repro.soc.cluster import Cluster, ClusterKind


@dataclass
class SchedutilConfig:
    """Tunables of the utilisation-driven frequency scaler.

    Attributes
    ----------
    headroom:
        Capacity margin applied to the utilisation signal; the kernel uses
        1.25 ("util is 80 % of capacity at the chosen frequency").
    up_rate_limit_s:
        Minimum time between two frequency increases.
    down_rate_limit_s:
        Minimum time between two frequency decreases; the kernel default is
        longer than the up limit which biases the governor towards staying
        high -- reproduced here because the bias matters for power.
    io_boost:
        Utilisation floor applied while the cluster sees any work at all,
        mimicking the scheduler's iowait/boost behaviour on interactive
        workloads.
    touch_boost_fraction:
        Input/touch boost: the frequency floor (as a fraction of the
        cluster's maximum frequency) applied to CPU clusters while they see
        activity.  Stock Android vendor kernels (including the Note 9's)
        boost the CPU clusters to -- or close to -- their top frequency on
        touch input, which is why Fig. 1 of the paper shows the big cluster
        near 2.3-2.7 GHz even while the frame rate is low.  Set to 0 to
        disable.  The boost is always clamped by the cluster's ``maxfreq``
        limit, which is exactly the lever the Next agent uses to defeat it.
    touch_boost_hold_s:
        How long the boost floor persists after the last activity.
    touch_boost_util_threshold:
        Minimum utilisation that counts as activity for boosting purposes.
    boost_gpu:
        Whether the boost floor also applies to the GPU cluster (off by
        default; Mali's devfreq governor does not input-boost).
    """

    headroom: float = 1.25
    up_rate_limit_s: float = 0.0
    down_rate_limit_s: float = 0.1
    io_boost: float = 0.0
    touch_boost_fraction: float = 0.95
    touch_boost_hold_s: float = 1.0
    touch_boost_util_threshold: float = 0.04
    boost_gpu: bool = False

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1.0")
        if self.up_rate_limit_s < 0 or self.down_rate_limit_s < 0:
            raise ValueError("rate limits must be non-negative")
        if not 0.0 <= self.io_boost <= 1.0:
            raise ValueError("io_boost must be in [0, 1]")
        if not 0.0 <= self.touch_boost_fraction <= 1.0:
            raise ValueError("touch_boost_fraction must be in [0, 1]")
        if self.touch_boost_hold_s < 0:
            raise ValueError("touch_boost_hold_s must be non-negative")
        if not 0.0 <= self.touch_boost_util_threshold <= 1.0:
            raise ValueError("touch_boost_util_threshold must be in [0, 1]")


class SchedutilScaler:
    """Per-tick utilisation-driven frequency selection within cluster limits."""

    def __init__(self, config: Optional[SchedutilConfig] = None) -> None:
        self.config = config or SchedutilConfig()
        self._last_up_time_s: Dict[str, float] = {}
        self._last_down_time_s: Dict[str, float] = {}
        self._last_activity_time_s: Dict[str, float] = {}
        # The boost floor index only depends on the cluster's OPP table and
        # the (static) config, so it is computed once per cluster, not every
        # tick (hot-loop: the scaler runs for every cluster on every tick).
        self._boost_index_cache: Dict[str, int] = {}

    def reset(self) -> None:
        """Forget rate-limit and boost history."""
        self._last_up_time_s.clear()
        self._last_down_time_s.clear()
        self._last_activity_time_s.clear()

    def _cached_boost_index(self, cluster: Cluster) -> int:
        """OPP index of the boost frequency floor for ``cluster`` (memoised)."""
        name = cluster.name
        index = self._boost_index_cache.get(name)
        if index is None:
            table = cluster.opp_table
            boost_freq = self.config.touch_boost_fraction * table.max_frequency_mhz
            index = table.ceil_index(boost_freq)
            self._boost_index_cache[name] = index
        return index

    def _boost_floor_index(self, cluster: Cluster, utilisation: float, now_s: float) -> int:
        """OPP index of the input-boost frequency floor (0 when not boosting)."""
        cfg = self.config
        if cfg.touch_boost_fraction <= 0:
            return 0
        if cluster.kind is ClusterKind.GPU and not cfg.boost_gpu:
            return 0
        name = cluster.name
        if utilisation >= cfg.touch_boost_util_threshold:
            self._last_activity_time_s[name] = now_s
        last_activity = self._last_activity_time_s.get(name)
        if last_activity is None or now_s - last_activity > cfg.touch_boost_hold_s:
            return 0
        return self._cached_boost_index(cluster)

    def select(
        self,
        cluster: Cluster,
        utilisation: float,
        now_s: float,
    ) -> int:
        """Pick and apply the OPP for ``cluster`` given its ``utilisation``.

        Returns the OPP index actually applied (after limit clamping).
        """
        cfg = self.config
        utilisation = min(1.0, max(0.0, utilisation))
        if utilisation > 0:
            utilisation = max(utilisation, cfg.io_boost)
        table = cluster.opp_table
        # schedutil: next_freq = headroom * current_freq * util, then pick the
        # lowest OPP at or above that frequency.
        target_freq = cfg.headroom * cluster.current_frequency_mhz * utilisation
        target_index = table.ceil_index(target_freq) if target_freq > 0 else 0
        target_index = max(target_index, self._boost_floor_index(cluster, utilisation, now_s))
        current = cluster.current_index

        name = cluster.name
        if target_index > current:
            last_up = self._last_up_time_s.get(name)
            if last_up is not None and now_s - last_up < cfg.up_rate_limit_s:
                return current
            applied = cluster.set_frequency_index(target_index)
            if applied != current:
                self._last_up_time_s[name] = now_s
            return applied
        if target_index < current:
            last_down = self._last_down_time_s.get(name)
            if last_down is not None and now_s - last_down < cfg.down_rate_limit_s:
                return current
            applied = cluster.set_frequency_index(target_index)
            if applied != current:
                self._last_down_time_s[name] = now_s
            return applied
        return current

    def select_all(
        self,
        clusters: Mapping[str, Cluster],
        utilisations: Mapping[str, float],
        now_s: float,
    ) -> Dict[str, int]:
        """Apply :meth:`select` to every cluster; returns applied indices."""
        return {
            name: self.select(cluster, utilisations.get(name, 0.0), now_s)
            for name, cluster in clusters.items()
        }

    # -- compiled hot path -------------------------------------------------------

    def compile_clusters(
        self, clusters: Mapping[str, Cluster]
    ) -> List[Tuple[str, Cluster, Tuple[float, ...], int, bool, int]]:
        """Precompute per-cluster records for :meth:`select_tick`.

        Each record is ``(name, cluster, frequencies, top_index, boostable,
        boost_index)``: everything :meth:`select` re-derives per call that is
        in fact constant for a given cluster and scaler config.
        """
        cfg = self.config
        compiled = []
        for name, cluster in clusters.items():
            boostable = cfg.touch_boost_fraction > 0 and (
                cluster.kind is not ClusterKind.GPU or cfg.boost_gpu
            )
            compiled.append(
                (
                    name,
                    cluster,
                    cluster._freqs,
                    len(cluster._freqs) - 1,
                    boostable,
                    self._cached_boost_index(cluster),
                )
            )
        return compiled

    def select_tick(
        self,
        compiled: List[Tuple[str, Cluster, Tuple[float, ...], int, bool, int]],
        utilisations: Mapping[str, float],
        now_s: float,
    ) -> None:
        """One fused frequency-selection pass over pre-compiled clusters.

        Behaviourally identical to calling :meth:`select` per cluster (same
        decisions, same rate-limit/boost state updates, same float sequence);
        the per-call layers -- ``ceil_index``/``clamp_index`` wrappers, the
        boost-floor recomputation, the per-cluster method dispatch -- are
        flattened out because this runs for every cluster on every tick.
        """
        cfg = self.config
        headroom = cfg.headroom
        io_boost = cfg.io_boost
        up_rate_limit = cfg.up_rate_limit_s
        down_rate_limit = cfg.down_rate_limit_s
        boost_threshold = cfg.touch_boost_util_threshold
        boost_hold = cfg.touch_boost_hold_s
        last_up = self._last_up_time_s
        last_down = self._last_down_time_s
        last_activity = self._last_activity_time_s
        get_utilisation = utilisations.get
        for name, cluster, freqs, top_index, boostable, boost_index in compiled:
            utilisation = get_utilisation(name, 0.0)
            if utilisation < 0.0:
                utilisation = 0.0
            elif utilisation > 1.0:
                utilisation = 1.0
            if utilisation > 0 and utilisation < io_boost:
                utilisation = io_boost
            target_freq = headroom * freqs[cluster._current_index] * utilisation
            if target_freq > 0:
                target_index = bisect_left(freqs, target_freq)
                if target_index > top_index:
                    target_index = top_index
            else:
                target_index = 0
            if boostable:
                if utilisation >= boost_threshold:
                    last_activity[name] = now_s
                    if boost_index > target_index:
                        target_index = boost_index
                else:
                    activity = last_activity.get(name)
                    if activity is not None and now_s - activity <= boost_hold:
                        if boost_index > target_index:
                            target_index = boost_index
            current = cluster._current_index
            if target_index > current:
                up_time = last_up.get(name)
                if up_time is not None and now_s - up_time < up_rate_limit:
                    continue
                if cluster.set_frequency_index(target_index) != current:
                    last_up[name] = now_s
            elif target_index < current:
                down_time = last_down.get(name)
                if down_time is not None and now_s - down_time < down_rate_limit:
                    continue
                if cluster.set_frequency_index(target_index) != current:
                    last_down[name] = now_s

    # -- batched hot path (device-population kernel) -----------------------------

    def compile_batch(
        self, clusters: Mapping[str, Cluster], n_devices: int
    ) -> "BatchScalerState":
        """Precompute the per-cluster records and state arrays for a batch."""
        return BatchScalerState(self.compile_clusters(clusters), n_devices)

    def select_tick_batch(
        self,
        state: "BatchScalerState",
        utilisation_rows,
        current_rows,
        min_limit_rows,
        max_limit_rows,
        now_s: float,
    ) -> None:
        """Batched :meth:`select_tick` over a device axis.

        ``utilisation_rows`` / ``current_rows`` / limit rows are
        ``(clusters, devices)`` arrays; ``current_rows`` is updated in place.
        Per lane the decision sequence is exactly :meth:`select_tick`'s: the
        utilisation clamp and io-boost floor, ``headroom * f_curr * util``,
        a left-``searchsorted`` (identical to ``bisect_left`` -- float
        comparisons are exact), the touch-boost floor with hold window, the
        up/down rate limits, and the limit-window clamp of
        ``Cluster.set_frequency_index``.
        """
        import numpy as np

        cfg = self.config
        headroom = cfg.headroom
        io_boost = cfg.io_boost
        up_rate_limit = cfg.up_rate_limit_s
        down_rate_limit = cfg.down_rate_limit_s
        boost_threshold = cfg.touch_boost_util_threshold
        boost_hold = cfg.touch_boost_hold_s
        for k in range(len(state.frequencies)):
            frequencies = state.frequencies[k]
            top_index = state.top_index[k]
            current = current_rows[k]
            utilisation = np.minimum(1.0, np.maximum(0.0, utilisation_rows[k]))
            if io_boost > 0.0:
                utilisation = np.where(
                    (utilisation > 0) & (utilisation < io_boost),
                    io_boost,
                    utilisation,
                )
            target_freq = headroom * frequencies[current] * utilisation
            target_index = np.searchsorted(frequencies, target_freq, side="left")
            target_index = np.where(
                target_freq > 0, np.minimum(target_index, top_index), 0
            )
            if state.boostable[k]:
                boost_index = state.boost_index[k]
                last_activity = state.last_activity[k]
                active = utilisation >= boost_threshold
                np.copyto(last_activity, now_s, where=active)
                in_hold = (now_s - last_activity) <= boost_hold
                target_index = np.where(
                    in_hold & (boost_index > target_index), boost_index, target_index
                )
            applied = np.maximum(
                min_limit_rows[k], np.minimum(max_limit_rows[k], target_index)
            )
            last_up = state.last_up[k]
            last_down = state.last_down[k]
            do_up = (target_index > current) & ~((now_s - last_up) < up_rate_limit)
            do_down = (target_index < current) & ~(
                (now_s - last_down) < down_rate_limit
            )
            changed = applied != current
            np.copyto(last_up, now_s, where=do_up & changed)
            np.copyto(last_down, now_s, where=do_down & changed)
            np.copyto(current, applied, where=do_up | do_down)


class BatchScalerState:
    """Per-batch state of :meth:`SchedutilScaler.select_tick_batch`.

    Holds the compiled per-cluster constants plus the rate-limit / boost
    timestamps as ``(clusters, devices)`` float arrays.  A timestamp of
    ``-inf`` encodes the scalar scaler's "no entry in the dict" state: every
    ``now - timestamp`` comparison then behaves exactly like the scalar
    ``None`` checks (``inf < limit`` is false, ``inf <= hold`` is false).
    """

    __slots__ = (
        "frequencies",
        "top_index",
        "boostable",
        "boost_index",
        "last_up",
        "last_down",
        "last_activity",
    )

    def __init__(self, compiled, n_devices: int) -> None:
        import numpy as np

        self.frequencies = [
            np.array(record[2], dtype=np.float64) for record in compiled
        ]
        self.top_index = [record[3] for record in compiled]
        self.boostable = [record[4] for record in compiled]
        self.boost_index = [record[5] for record in compiled]
        n_clusters = len(compiled)
        self.last_up = np.full((n_clusters, n_devices), -np.inf)
        self.last_down = np.full((n_clusters, n_devices), -np.inf)
        self.last_activity = np.full((n_clusters, n_devices), -np.inf)


class SchedutilGovernor(Governor):
    """Stock Android policy: no frequency limits, scaler follows utilisation."""

    invocation_period_s = 0.1
    observation_free = True

    def __init__(self) -> None:
        super().__init__(name="schedutil")

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Keep every cluster's limits wide open (the scaler does the rest)."""
        for cluster in clusters.values():
            if cluster.max_limit_index != len(cluster.opp_table) - 1 or cluster.min_limit_index != 0:
                cluster.reset_limits()

    def update_batch(self, devices, current_rows, min_limit_rows, max_limit_rows, top_indices) -> None:
        """Vectorised :meth:`update`: limits wide open on every due lane."""
        for k in range(len(top_indices)):
            min_limit_rows[k][devices] = 0
            max_limit_rows[k][devices] = top_indices[k]
