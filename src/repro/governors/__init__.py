"""DVFS governors: the inner frequency scaler and the baseline policies.

The simulation separates two layers, mirroring how the paper's agent is
deployed on Android:

* the *frequency scaler* (:class:`~repro.governors.schedutil.SchedutilScaler`)
  runs every tick and picks an operating point for each cluster **within its
  current min/max limits**, following utilisation exactly like the kernel's
  ``schedutil``/devfreq governors, and
* the *policy governor* runs at its own invocation period and manipulates
  the limits (or pins frequencies).  Stock ``schedutil`` is the degenerate
  policy that leaves the limits wide open; ``Next`` (in :mod:`repro.core`)
  learns per-cluster ``maxfreq`` caps; ``Int. QoS PM`` pins frequency pairs
  from a power-cost model.
"""

from repro.governors.base import Governor, GovernorObservation
from repro.governors.schedutil import SchedutilGovernor, SchedutilScaler
from repro.governors.simple import (
    ConservativeGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
)
from repro.governors.intqos import IntQosGovernor

__all__ = [
    "Governor",
    "GovernorObservation",
    "SchedutilScaler",
    "SchedutilGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "ConservativeGovernor",
    "IntQosGovernor",
]
