"""Governor interface shared by the baselines and the Next agent.

A governor is invoked periodically with an observation assembled from the
(noisy) sensors and the display pipeline, and reacts by adjusting cluster
frequencies or frequency limits.  The observation deliberately contains only
quantities that are available on a stock, unrooted Android device -- the same
constraint the paper's application-layer agent works under: frequencies and
limits (sysfs), FPS (SurfaceFlinger statistics), power (fuel gauge) and the
two temperatures (thermal zones).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.soc.cluster import Cluster


@dataclass(frozen=True)
class GovernorObservation:
    """Snapshot handed to a governor at each invocation.

    Attributes
    ----------
    time_s:
        Simulation time of the invocation.
    dt_s:
        Time elapsed since the previous invocation of this governor.
    fps:
        Frame rate over the trailing second (front-buffer updates per second).
    utilisations:
        Per-cluster utilisation over the last tick, in [0, 1].
    frequencies_mhz:
        Current operating frequency of each cluster.
    max_limits_mhz:
        Current ``maxfreq`` limit of each cluster.
    power_w:
        Platform power from the power sensor.
    temperature_big_c:
        Big-cluster thermal sensor reading.
    temperature_device_c:
        Virtual device-temperature sensor reading.
    frames_dropped:
        Frames dropped since the previous invocation.
    frames_demanded:
        Frames demanded by the application since the previous invocation.
    """

    time_s: float
    dt_s: float
    fps: float
    utilisations: Mapping[str, float]
    frequencies_mhz: Mapping[str, float]
    max_limits_mhz: Mapping[str, float]
    power_w: float
    temperature_big_c: float
    temperature_device_c: float
    frames_dropped: int = 0
    frames_demanded: int = 0


class Governor(abc.ABC):
    """Base class for DVFS policy governors."""

    #: Default invocation period; concrete governors may override it.
    invocation_period_s: float = 0.1

    #: Governors whose :meth:`update` neither reads its observation nor keeps
    #: per-invocation state may set this True *and* implement
    #: :meth:`update_batch`.  The batched device-population kernel then skips
    #: sensor sampling and observation construction for such devices and
    #: applies the policy vectorised across the fleet; the end state per
    #: device must be exactly what :meth:`update` would have produced.
    observation_free: bool = False

    def update_batch(self, devices, current_rows, min_limit_rows, max_limit_rows, top_indices) -> None:
        """Vectorised :meth:`update` over the ``devices`` lanes of a batch.

        Only called when :attr:`observation_free` is True.  ``current_rows``,
        ``min_limit_rows`` and ``max_limit_rows`` are ``(clusters, devices)``
        OPP-index arrays; ``top_indices`` holds each cluster's highest OPP
        index.  Implementations mutate the rows in place.
        """
        raise NotImplementedError

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__

    @abc.abstractmethod
    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """React to ``observation`` by adjusting the clusters.

        Implementations may call :meth:`Cluster.set_frequency_index`,
        :meth:`Cluster.set_max_limit_index` and related methods.  They must
        not reach into the simulator internals -- everything they are allowed
        to know is in the observation and the cluster objects.
        """

    def observe_tick(self, time_s: float, fps: float) -> None:
        """Fast-path hook called every simulation tick with the current FPS.

        Policy governors that need finer-grained observation than their
        invocation period (the Next agent samples the frame rate every 25 ms
        for its frame window) override this.  The default does nothing.
        """

    def on_session_start(self, app_name: str) -> None:
        """Hook called when a new application segment starts (optional)."""

    def on_session_end(self, app_name: str) -> None:
        """Hook called when an application segment ends (optional)."""

    def reset(self, clusters: Dict[str, Cluster]) -> None:
        """Reset governor state and release all frequency limits."""
        for cluster in clusters.values():
            cluster.reset_limits()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
