"""Simple reference governors: performance, powersave and conservative.

These are not evaluated in the paper but are included for ablations and as
sanity anchors: ``performance`` bounds achievable QoS (and power) from above,
``powersave`` bounds power from below, and ``conservative`` is a utilisation
governor with a slower ramp, useful to show that the Next agent's gains do
not come merely from being sluggish.
"""

from __future__ import annotations

from typing import Dict

from repro.governors.base import Governor, GovernorObservation
from repro.soc.cluster import Cluster


class PerformanceGovernor(Governor):
    """Pin every cluster at its highest operating point."""

    invocation_period_s = 1.0
    observation_free = True

    def __init__(self) -> None:
        super().__init__(name="performance")

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Force each cluster to the top OPP via min == max == top."""
        for cluster in clusters.values():
            top = len(cluster.opp_table) - 1
            cluster.set_max_limit_index(top)
            cluster.set_min_limit_index(top)
            cluster.set_frequency_index(top)

    def update_batch(self, devices, current_rows, min_limit_rows, max_limit_rows, top_indices) -> None:
        """Vectorised :meth:`update`: pin every due lane at the top OPP."""
        for k in range(len(top_indices)):
            top = top_indices[k]
            min_limit_rows[k][devices] = top
            max_limit_rows[k][devices] = top
            current_rows[k][devices] = top


class PowersaveGovernor(Governor):
    """Pin every cluster at its lowest operating point."""

    invocation_period_s = 1.0
    observation_free = True

    def __init__(self) -> None:
        super().__init__(name="powersave")

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Force each cluster to the bottom OPP via max == 0."""
        for cluster in clusters.values():
            cluster.set_min_limit_index(0)
            cluster.set_max_limit_index(0)
            cluster.set_frequency_index(0)

    def update_batch(self, devices, current_rows, min_limit_rows, max_limit_rows, top_indices) -> None:
        """Vectorised :meth:`update`: pin every due lane at the bottom OPP."""
        for k in range(len(top_indices)):
            min_limit_rows[k][devices] = 0
            max_limit_rows[k][devices] = 0
            current_rows[k][devices] = 0


class ConservativeGovernor(Governor):
    """Step-wise utilisation governor (one OPP at a time, with hysteresis)."""

    invocation_period_s = 0.2

    def __init__(self, up_threshold: float = 0.8, down_threshold: float = 0.35) -> None:
        super().__init__(name="conservative")
        if not 0 < down_threshold < up_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 < down < up <= 1")
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Nudge the ``maxfreq`` cap of each cluster one step up or down."""
        for name, cluster in clusters.items():
            utilisation = observation.utilisations.get(name, 0.0)
            cap = cluster.max_limit_index
            if utilisation > self.up_threshold:
                cluster.set_max_limit_index(cap + 1)
            elif utilisation < self.down_threshold:
                cluster.set_max_limit_index(cap - 1)
