"""Re-implementation of the "Int. QoS PM" baseline (Pathania et al., DAC 2014).

The paper compares Next against the integrated CPU-GPU power management
scheme for 3D mobile games by Pathania et al.  Per its published description
(as summarised in Section II of the Next paper) the scheme:

1. observes the frame rate and **averages it over a time window**; that
   average becomes the performance (FPS) target,
2. uses a cost model relating CPU/GPU frequency to achievable frame rate and
   power, and
3. sets the CPU and GPU operating frequencies to the lowest-power combination
   predicted to sustain the averaged FPS target.

Because the scheme was designed for games the Next paper only evaluates it on
Lineage and PubG; the reproduction follows that restriction in the benchmark
harness but the class itself will run on any workload.

The weakness the Next paper exploits is reproduced faithfully: the target is
a *mean* over a long window, so a session whose frame rate varies with user
interaction (menus, loading screens, pauses) drags the target around slowly
and the selected frequencies are sized for an FPS level that no longer
reflects what the user needs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.governors.base import Governor, GovernorObservation
from repro.soc.cluster import Cluster


@dataclass
class IntQosConfig:
    """Tunables of the Int. QoS PM baseline.

    Attributes
    ----------
    fps_window_s:
        Length of the FPS averaging window that defines the target.
    capacity_margin:
        Safety margin applied on top of the predicted capacity requirement.
    min_target_fps:
        Lower bound of the FPS target; prevents the scheme from collapsing
        to zero during loading screens (the original targets 3D games that
        are expected to keep producing frames).
    invocation_period_s:
        How often frequencies are re-evaluated.
    """

    fps_window_s: float = 6.0
    capacity_margin: float = 1.7
    min_target_fps: float = 30.0
    invocation_period_s: float = 1.0

    def __post_init__(self) -> None:
        if self.fps_window_s <= 0:
            raise ValueError("fps_window_s must be positive")
        if self.capacity_margin < 1.0:
            raise ValueError("capacity_margin must be >= 1.0")
        if self.min_target_fps < 0:
            raise ValueError("min_target_fps must be non-negative")
        if self.invocation_period_s <= 0:
            raise ValueError("invocation_period_s must be positive")


class IntQosGovernor(Governor):
    """Integrated CPU-GPU QoS-aware power manager (averaged-FPS target)."""

    def __init__(self, config: Optional[IntQosConfig] = None) -> None:
        super().__init__(name="int_qos_pm")
        self.config = config or IntQosConfig()
        self.invocation_period_s = self.config.invocation_period_s
        self._fps_history: Deque[Tuple[float, float]] = deque()
        # Exponentially-smoothed estimate of capacity needed per displayed
        # frame, per cluster (mega work units per frame).
        self._capacity_per_frame: Dict[str, float] = {}

    # -- bookkeeping -----------------------------------------------------------------

    def reset(self, clusters: Dict[str, Cluster]) -> None:
        """Clear history and release limits."""
        super().reset(clusters)
        self._fps_history.clear()
        self._capacity_per_frame.clear()

    def on_session_start(self, app_name: str) -> None:
        """Forget the previous application's FPS history."""
        self._fps_history.clear()
        self._capacity_per_frame.clear()

    def _target_fps(self, now_s: float, fps: float) -> float:
        self._fps_history.append((now_s, fps))
        cutoff = now_s - self.config.fps_window_s
        while self._fps_history and self._fps_history[0][0] < cutoff:
            self._fps_history.popleft()
        average = sum(value for _, value in self._fps_history) / len(self._fps_history)
        return max(self.config.min_target_fps, average)

    def _update_capacity_model(
        self,
        observation: GovernorObservation,
        clusters: Dict[str, Cluster],
    ) -> None:
        fps = max(observation.fps, 1.0)
        for name, cluster in clusters.items():
            utilisation = observation.utilisations.get(name, 0.0)
            demanded_capacity = utilisation * cluster.current_capacity
            per_frame = demanded_capacity / fps
            previous = self._capacity_per_frame.get(name)
            if previous is None:
                self._capacity_per_frame[name] = per_frame
            else:
                self._capacity_per_frame[name] = 0.7 * previous + 0.3 * per_frame

    # -- policy ------------------------------------------------------------------------

    def update(self, observation: GovernorObservation, clusters: Dict[str, Cluster]) -> None:
        """Pin each cluster to the lowest OPP predicted to hold the FPS target."""
        target_fps = self._target_fps(observation.time_s, observation.fps)
        self._update_capacity_model(observation, clusters)

        # Closed-loop correction: if the delivered FPS is falling short of the
        # averaged target, scale the capacity requirement up until it recovers
        # (the original scheme re-evaluates its cost model the same way).
        correction = 1.0
        if observation.fps > 0 and observation.fps < 0.95 * target_fps:
            correction = min(2.0, target_fps / max(observation.fps, 1.0))

        for name, cluster in clusters.items():
            per_frame = self._capacity_per_frame.get(name, 0.0)
            required_capacity = per_frame * target_fps * self.config.capacity_margin * correction
            table = cluster.opp_table
            chosen_index = len(table) - 1
            for index in range(len(table)):
                if cluster.capacity_at_index(index) >= required_capacity:
                    chosen_index = index
                    break
            # The original scheme sets the operating frequency directly; pinning
            # is reproduced by collapsing the limit window onto the chosen OPP.
            cluster.set_min_limit_index(0)
            cluster.set_max_limit_index(chosen_index)
            cluster.set_min_limit_index(chosen_index)
            cluster.set_frequency_index(chosen_index)
