"""Deterministic, seeded fault injection at named execution seams.

Fault tolerance that is only exercised by real outages is untested code.
This module lets tests and the CI chaos job *schedule* failures -- worker
crashes, hung cells, torn JSON writes, transient exceptions -- and replay
exactly the same failure sequence on every run:

* a :class:`FaultPlan` is a seed plus a list of :class:`FaultRule` entries,
  each naming a seam (``site``), a failure ``kind``, a key pattern and a
  firing budget;
* instrumented seams call :func:`fault_point` with their site name, a
  stable key (a cell fingerprint, a store filename) and the orchestrator's
  attempt counter;
* whether a fault fires is a pure function of ``(plan seed, site, key,
  attempt)`` -- no process-global randomness, no wall clock -- so the same
  plan over the same work produces the same faults on any machine, and a
  retried attempt (higher ``attempt``) deterministically escapes a rule
  whose ``max_attempt`` budget is spent.

Activation is process-wide and inherited by pool workers: programmatic
:func:`activate_fault_plan` / :func:`injected_faults` also export the plan
through the ``REPRO_FAULT_PLAN`` environment variable (inline JSON or a
file path), which every worker process reads lazily on its first
instrumented call.  Without an active plan, :func:`fault_point` is a cheap
no-op -- production sweeps pay one ``None`` check per seam.

The seams themselves stay honest: a fault fires *before* the seam's real
work (or, for write seams, at a named stage inside it), so a retried
attempt that escapes its fault executes the untouched code path and -- by
the bit-identity contract -- produces exactly the bytes a fault-free first
attempt would have.  The chaos harness pins that parity per cell.
"""

from __future__ import annotations

import fnmatch
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

#: Environment variable holding the active plan: inline JSON (starts with
#: ``{``) or a path to a JSON file.  Pool workers inherit it, so one
#: activation drives faults across the whole process tree.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Named seams.  Instrumented call sites import these constants so a typo'd
#: site name cannot silently disable a rule.
SITE_EXECUTE_CELL = "runner.execute_cell"
SITE_EXECUTE_BATCH = "runner.execute_cells_batched"
SITE_TRAIN_ARTIFACT = "artifacts.train_artifact"
SITE_TRAIN_DEVICE_ROUND = "federated.train_device_round"
SITE_ATOMIC_WRITE = "persistence.atomic_write_json"
#: Stage inside :func:`~repro.core.persistence.atomic_write_json` after the
#: temporary file is staged but before the ``os.replace`` publication --
#: a crash here models a process dying mid-write.
SITE_ATOMIC_WRITE_STAGED = "persistence.atomic_write_json:staged"

KNOWN_SITES = (
    SITE_EXECUTE_CELL,
    SITE_EXECUTE_BATCH,
    SITE_TRAIN_ARTIFACT,
    SITE_TRAIN_DEVICE_ROUND,
    SITE_ATOMIC_WRITE,
    SITE_ATOMIC_WRITE_STAGED,
)

#: Failure kinds a rule may inject.
KIND_CRASH = "crash"
KIND_HANG = "hang"
KIND_TRANSIENT = "transient"
KIND_TORN_WRITE = "torn_write"

KNOWN_KINDS = (KIND_CRASH, KIND_HANG, KIND_TRANSIENT, KIND_TORN_WRITE)

#: Exit code of an injected worker crash, distinctive in pool post-mortems.
CRASH_EXIT_CODE = 70


class InjectedTransientError(RuntimeError):
    """An injected transient failure: retryable by classification."""


class InjectedCrashError(RuntimeError):
    """An injected crash at a seam that cannot kill its host process.

    Write seams raise this instead of exiting so tests can observe the
    half-written state (staged temp file, untouched destination) that a
    genuine mid-write crash leaves behind.
    """


@dataclass(frozen=True)
class FaultRule:
    """One scheduled failure mode at one seam.

    ``match`` is an ``fnmatch`` pattern over the seam's key (cell
    fingerprint, store filename).  ``rate`` thins firing below 1.0 via the
    plan's seeded hash.  ``max_attempt`` bounds firing by the caller's
    attempt counter: the default of 1 fires on the first attempt only, so
    bounded retry always converges.  ``max_fires`` additionally bounds
    total firings per ``(site, key)`` within one process -- the budget that
    matters for write seams, which have no attempt counter.
    """

    site: str
    kind: str
    match: str = "*"
    rate: float = 1.0
    max_attempt: int = 1
    max_fires: Optional[int] = None
    hang_s: float = 2.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {list(KNOWN_SITES)}"
            )
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {list(KNOWN_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be at least 1")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be at least 1 (or omitted)")
        if self.hang_s < 0:
            raise ValueError("hang_s must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``REPRO_FAULT_PLAN`` document)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "match": self.match,
            "rate": self.rate,
            "max_attempt": self.max_attempt,
            "max_fires": self.max_fires,
            "hang_s": self.hang_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        """Rebuild a rule from :meth:`to_dict` output."""
        return cls(
            site=data["site"],
            kind=data["kind"],
            match=data.get("match", "*"),
            rate=float(data.get("rate", 1.0)),
            max_attempt=int(data.get("max_attempt", 1)),
            max_fires=(
                None if data.get("max_fires") is None else int(data["max_fires"])
            ),
            hang_s=float(data.get("hang_s", 2.0)),
        )


def _decision_fraction(seed: int, site: str, key: str, attempt: int, rule_index: int) -> float:
    """Deterministic uniform draw in [0, 1) for one firing decision.

    A pure function of its inputs: the same plan over the same work yields
    the same faults in any process on any machine, which is what lets the
    chaos harness assert bit-identical results against a fault-free run.
    """
    text = "\x1f".join(str(part) for part in (seed, site, key, attempt, rule_index))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable schedule of injected failures."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def decide(self, site: str, key: str, attempt: int, fires: Mapping[Tuple[str, str], int]) -> Optional[FaultRule]:
        """The first rule that fires at this call, or ``None``.

        ``fires`` is the caller's per-process ``(site, key)`` firing
        counter, consulted for ``max_fires`` budgets; :func:`fault_point`
        owns the counter and increments it when a rule fires.
        """
        for index, rule in enumerate(self.rules):
            if rule.site != site or not fnmatch.fnmatchcase(key, rule.match):
                continue
            if attempt >= rule.max_attempt:
                continue
            if (
                rule.max_fires is not None
                and fires.get((site, key), 0) >= rule.max_fires
            ):
                continue
            if rule.rate < 1.0 and _decision_fraction(
                self.seed, site, key, attempt, index
            ) >= rule.rate:
                continue
            return rule
        return None

    # -- serialisation ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (the ``REPRO_FAULT_PLAN`` document)."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        """Compact JSON, suitable for the environment variable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            seed=int(data.get("seed", 0)),
            rules=tuple(
                FaultRule.from_dict(entry) for entry in data.get("rules", ())
            ),
        )

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse an inline-JSON plan or a path to a JSON plan file."""
        text = text.strip()
        if not text:
            return cls()
        if not text.startswith("{"):
            with open(text, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------------
# Process-wide activation
# ---------------------------------------------------------------------------

#: Whether an injected ``crash`` may hard-exit this process.  Set by
#: :func:`mark_worker_process`, which the sweep runner installs as its pool
#: initializer: a crash in a pool worker dies for real (the parent observes
#: ``BrokenProcessPool``, exactly like a kernel OOM-kill), while the same
#: rule reached from the orchestrator or a sequential run raises
#: :class:`InjectedCrashError` instead -- killing the host there would take
#: the sweep (and the test suite) down with it.
_crash_exits_process = False
#: The programmatically activated plan, if any.  ``False`` means "not yet
#: resolved from the environment"; ``None`` means "resolved: no plan".
_active_plan: Any = False
#: The environment text the cached plan was parsed from, to detect changes.
_active_source: Optional[str] = None
#: Per-process ``(site, key) -> firings`` counter for ``max_fires`` budgets.
_fire_counts: Dict[Tuple[str, str], int] = {}


def mark_worker_process() -> None:
    """Declare this process expendable: injected crashes may hard-exit it.

    Installed as the sweep runner's ``ProcessPoolExecutor`` initializer, so
    the distinction between "worker" and "orchestrator" is structural
    rather than guessed from process ancestry.  Never unset: a process that
    was ever a pool worker stays expendable.
    """
    global _crash_exits_process
    _crash_exits_process = True


def in_worker_process() -> bool:
    """Whether this process was marked as an expendable pool worker.

    Also the observability layer's worker test: a pool worker flushes its
    metrics into the trace as it finishes each task (its process may be
    recycled at any time), while the orchestrator flushes once per run.
    """
    return _crash_exits_process


def activate_fault_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process and every future child process.

    Exported through ``REPRO_FAULT_PLAN`` so pool workers -- which may be
    forked or spawned -- pick the identical plan up from the environment.
    Resets the per-process firing counters so activation order cannot leak
    between tests.
    """
    global _active_plan, _active_source
    _active_plan = plan
    _active_source = plan.to_json()
    os.environ[FAULT_PLAN_ENV] = _active_source
    _fire_counts.clear()


def deactivate_fault_plan() -> None:
    """Clear the active plan (and the environment export)."""
    global _active_plan, _active_source
    _active_plan = None
    _active_source = None
    os.environ.pop(FAULT_PLAN_ENV, None)
    _fire_counts.clear()


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: activate ``plan``, deactivate on exit."""
    activate_fault_plan(plan)
    try:
        yield plan
    finally:
        deactivate_fault_plan()


def active_fault_plan() -> Optional[FaultPlan]:
    """The plan driving this process, resolved lazily from the environment.

    A worker process that never saw :func:`activate_fault_plan` resolves
    the plan from ``REPRO_FAULT_PLAN`` on its first instrumented call; the
    parse is cached until the variable's text changes.
    """
    global _active_plan, _active_source
    source = os.environ.get(FAULT_PLAN_ENV)
    if _active_plan is not False and source == _active_source:
        return _active_plan
    if source is None:
        _active_plan, _active_source = None, None
        return None
    _active_plan = FaultPlan.parse(source)
    _active_source = source
    _fire_counts.clear()
    return _active_plan


def fire_counts() -> Dict[Tuple[str, str], int]:
    """This process's per-``(site, key)`` firing counters (for assertions)."""
    return dict(_fire_counts)


def fault_point(site: str, key: str, attempt: int = 0) -> Optional[FaultRule]:
    """Evaluate (and execute) any scheduled fault at an instrumented seam.

    * ``transient`` raises :class:`InjectedTransientError`,
    * ``crash`` hard-exits the process with :data:`CRASH_EXIT_CODE` at
      execution seams in a marked pool worker (modelling a killed worker;
      the parent pool observes ``BrokenProcessPool``) and raises
      :class:`InjectedCrashError` everywhere else -- at write seams, in the
      orchestrator and in sequential runs, where killing the host would
      take the sweep down too,
    * ``hang`` sleeps ``hang_s`` wall seconds and then returns the rule, so
      an un-watchdogged run still completes (slowly) with correct results,
    * ``torn_write`` returns the rule and lets the seam implement the tear
      (the seam knows what a torn version of its document looks like).

    Returns the fired rule for kinds the seam must act on itself, ``None``
    when nothing fired.
    """
    plan = active_fault_plan()
    if plan is None:
        return None
    rule = plan.decide(site, key, attempt, _fire_counts)
    if rule is None:
        return None
    _fire_counts[(site, key)] = _fire_counts.get((site, key), 0) + 1
    # Imported lazily: obs sits above reliability in the layering, and the
    # counter only matters once a fault actually fires.
    from repro.obs.metrics import metrics

    metrics().inc(f"faults.fired.{rule.kind}")
    if rule.kind == KIND_TRANSIENT:
        raise InjectedTransientError(
            f"injected transient fault at {site} (key={key}, attempt={attempt})"
        )
    if rule.kind == KIND_CRASH:
        if _crash_exits_process and site not in (
            SITE_ATOMIC_WRITE,
            SITE_ATOMIC_WRITE_STAGED,
        ):
            os._exit(CRASH_EXIT_CODE)
        raise InjectedCrashError(
            f"injected crash at {site} (key={key}, attempt={attempt})"
        )
    if rule.kind == KIND_HANG:
        time.sleep(rule.hang_s)
        return rule
    return rule  # torn_write: the seam implements the tear
