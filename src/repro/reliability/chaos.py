"""Chaos-smoke harness: a sweep under injected faults must be bit-identical.

The fault-tolerance layer's whole claim is that recovery is *invisible* in
the results: crashes, hangs, torn writes and transient failures may cost
retries and pool rebuilds, but the delivered cells are byte-for-byte what a
fault-free run produces.  This harness pins that claim end to end, the way
CI's ``chaos-smoke`` job runs it::

    python -m repro.reliability.chaos

It executes a small untrained matrix three ways -- fault-free sequential
(the baseline), pooled under a seeded fault mix (worker crashes, hangs,
transient exceptions), and as a 2-shard distributed plan under the same mix
plus a torn ``shard-status.json`` write -- then asserts per-cell
``sample_stream_hash`` parity across all three, zero surviving failures,
and a clean merge.  Faults are scheduled by :class:`FaultPlan`, so every
run of this harness replays the identical failure sequence.

The faulted phases run with span tracing *force-enabled* (the pooled sweep
to a scratch trace, each shard to its own ``trace.jsonl`` that the merge
folds together), so the parity checks double as the observability layer's
perturbation gate: tracing a chaotic run may not move a single sample.
"""

from __future__ import annotations

import os
import sys
import tempfile
from typing import Dict

from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import SweepResult, SweepRunner
from repro.obs.trace import TRACE_BASENAME, read_trace, traced
from repro.reliability.faults import (
    KIND_CRASH,
    KIND_HANG,
    KIND_TORN_WRITE,
    KIND_TRANSIENT,
    SITE_ATOMIC_WRITE,
    SITE_EXECUTE_BATCH,
    SITE_EXECUTE_CELL,
    FaultPlan,
    FaultRule,
    injected_faults,
)
from repro.reliability.retry import RetryPolicy


def chaos_matrix() -> ScenarioMatrix:
    """2 governors x 2 workloads x 1 seed, ~3 s cells: small but real."""
    return ScenarioMatrix.build(
        name="chaos-smoke",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0,),
        duration_s=3.0,
    )


def sweep_fault_plan(seed: int = 7) -> FaultPlan:
    """The sweep-phase mix: crashes, transients and hangs at the cell seams.

    Rates below 1.0 thin each kind over the cells through the plan's seeded
    hash, so the mix lands on different cells for different seeds but on
    the *same* cells for the same seed -- every CI run replays the same
    chaos.  ``max_attempt=1`` (the default) makes each fault fire on a
    cell's first attempt only, so bounded retry always converges.
    """
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_CRASH, rate=0.5),
            FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_TRANSIENT, rate=0.5),
            FaultRule(
                site=SITE_EXECUTE_CELL, kind=KIND_HANG, rate=0.5, hang_s=0.1
            ),
            FaultRule(site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT),
        ),
    )


def shard_fault_plan(seed: int = 11) -> FaultPlan:
    """The shard-phase mix: the sweep mix plus a torn shard-status write.

    The torn write targets ``shard-status.json`` only -- the one store file
    that is rewritten on every delivery, so the tear is repaired by the next
    heartbeat and ``shard status`` merely has to tolerate the torn snapshot.
    ``max_fires=1`` spends the tear on the first write.
    """
    return FaultPlan(
        seed=seed,
        rules=(
            FaultRule(
                site=SITE_ATOMIC_WRITE,
                kind=KIND_TORN_WRITE,
                match="shard-status.json",
                max_fires=1,
            ),
            FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_CRASH, rate=0.5),
            FaultRule(site=SITE_EXECUTE_CELL, kind=KIND_TRANSIENT, rate=0.5),
            FaultRule(site=SITE_EXECUTE_BATCH, kind=KIND_TRANSIENT),
        ),
    )


def cell_hashes(sweep: SweepResult) -> Dict[str, str]:
    """Per-cell sample-stream hash: the parity currency of the whole repo."""
    if sweep.failures:
        first = sweep.failures[0]
        raise SystemExit(
            f"chaos-smoke: {len(sweep.failures)} cell(s) failed; first: "
            f"{first.cell.label()}: {first.error}"
        )
    return {
        result.cell.fingerprint(): result.summary["sample_stream_hash"]
        for result in sweep.results
    }


def _check_parity(
    baseline: Dict[str, str], candidate: Dict[str, str], phase: str
) -> None:
    if candidate == baseline:
        print(f"chaos-smoke: {phase}: {len(candidate)} cells bit-identical")
        return
    missing = sorted(set(baseline) - set(candidate))
    extra = sorted(set(candidate) - set(baseline))
    diverged = sorted(
        fp
        for fp in set(baseline) & set(candidate)
        if baseline[fp] != candidate[fp]
    )
    raise SystemExit(
        f"chaos-smoke: {phase} BROKE bit-identity: "
        f"{len(diverged)} diverged {diverged[:3]}, "
        f"{len(missing)} missing, {len(extra)} extra"
    )


def main() -> int:
    matrix = chaos_matrix()
    print(
        f"chaos-smoke: matrix '{matrix.name}' ({len(matrix)} cells), "
        "baseline fault-free run..."
    )
    baseline = cell_hashes(SweepRunner(max_workers=1).run(matrix))

    print("chaos-smoke: pooled sweep under fault mix", end=" ")
    plan = sweep_fault_plan()
    print(f"(seed={plan.seed}, {len(plan.rules)} rules)...")
    # Tracing is force-enabled here: parity against the untraced baseline
    # below pins the observability layer's core invariant -- spans, metrics
    # footers and retry events may not perturb a single recorded sample,
    # even while the fault mix is exercising every recovery path.
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-trace-") as trace_dir:
        trace_path = os.path.join(trace_dir, TRACE_BASENAME)
        with traced(trace_path):
            with injected_faults(plan):
                chaotic = cell_hashes(
                    SweepRunner(
                        max_workers=2, retry_policy=RetryPolicy(max_retries=3)
                    ).run(matrix)
                )
        events, torn = read_trace(trace_path)
        spans = [event for event in events if event.get("kind") == "span"]
        retries = [
            event
            for event in events
            if event.get("kind") == "event" and event.get("name") == "retry"
        ]
        if not spans:
            raise SystemExit(
                "chaos-smoke: traced faulted sweep recorded no spans"
            )
        print(
            f"chaos-smoke: trace recorded {len(spans)} spans, "
            f"{len(retries)} retry events ({torn} torn lines)"
        )
    _check_parity(baseline, chaotic, "faulted traced sweep")

    # Import here: repro.experiments.distributed imports the reliability
    # package, so a module-level import would be circular.
    from repro.experiments.distributed import (
        merge_shards,
        plan_shards,
        run_shard,
        shard_directory,
        shard_status,
    )

    plan = shard_fault_plan()
    print(
        f"chaos-smoke: 2-shard plan under fault mix (seed={plan.seed}, "
        f"{len(plan.rules)} rules)..."
    )
    manifest = plan_shards(matrix, 2)
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as base_dir:
        shard_dirs = [shard_directory(base_dir, index) for index in range(2)]
        with injected_faults(plan):
            for index, shard_dir in enumerate(shard_dirs):
                # Each shard traces to its own file (exactly what
                # `shard run --trace` does); the merge below folds them
                # into one timeline.
                with traced(os.path.join(shard_dir, TRACE_BASENAME)):
                    run_shard(
                        manifest,
                        index,
                        shard_dir,
                        max_workers=2,
                        retry_policy=RetryPolicy(max_retries=3),
                    )
        for index, shard_dir in enumerate(shard_dirs):
            status = shard_status(
                manifest, index, shard_dir, stale_after_s=3600.0
            )
            if status.state != "complete" or status.stale:
                raise SystemExit(
                    f"chaos-smoke: shard {index} ended "
                    f"{status.state}/stale={status.stale}, expected a "
                    "complete, live shard"
                )
        merged, counters = merge_shards(
            manifest, shard_dirs, f"{base_dir}/merged-cache"
        )
        _check_parity(baseline, cell_hashes(merged), "faulted 2-shard merge")
        print(f"chaos-smoke: merge counters {counters}")
        if not counters.get("trace_events"):
            raise SystemExit(
                "chaos-smoke: shard merge folded no trace events; expected "
                "both shard traces in the merged timeline"
            )
    print("chaos-smoke: PASS")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI job
    sys.exit(main())
