"""The sanctioned wall-clock seam for the reliability layer.

Simulated results must never observe the wall clock (lint rule REP002), but
fault tolerance is *about* wall time: heartbeats prove a worker is alive,
watchdog deadlines bound how long a hung cell may stall a sweep, and
backoff sleeps space retries out.  None of those readings is ever folded
into a recorded sample stream -- they gate scheduling and reporting only --
so they are safe, but they must stay auditable.  This module is the single
place the reliability machinery reads time, and exactly these two
functions are allowlisted in the committed ``[tool.repro-lint.REP002]``
policy; a wall-clock read anywhere else in the package still fails lint.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Unix timestamp, for heartbeat fields in status documents.

    Unix time (not monotonic) because heartbeats are compared *across
    processes and machines*: the shard worker stamps the file, a status
    inspection on another host judges its age.
    """
    return time.time()


def monotonic_now() -> float:
    """Monotonic timestamp, for in-process watchdog deadlines.

    Monotonic (not unix) because deadlines are compared only within the
    orchestrating process, where immunity to clock adjustments matters more
    than cross-machine comparability.
    """
    return time.monotonic()
