"""Fault tolerance for the sweep execution layer.

The bit-identity contract -- every cell, artifact and fleet is a pure
function of its fingerprinted spec -- is what makes aggressive recovery
safe: a crashed worker, a hung cell or a torn store write can always be
retried, and the retried work is guaranteed to produce the same bytes the
first attempt would have.  This package supplies the machinery that turns
that guarantee into behaviour:

* :mod:`repro.reliability.faults` -- deterministic, seeded fault injection
  at named seams (worker crashes, hangs, torn JSON writes, transient
  exceptions), activated programmatically or via ``REPRO_FAULT_PLAN``, so
  tests and the CI chaos job can drive failure paths reproducibly.
* :mod:`repro.reliability.retry` -- failure classification (transient vs
  deterministic) and bounded, seeded backoff for the sweep runner's retry
  loop.
* :mod:`repro.reliability.watchdog` -- per-cell timeout budgets derived
  from the shard cost model, so hung futures are detected and rescheduled
  instead of stalling a sweep forever.
* :mod:`repro.reliability.clock` -- the one sanctioned wall-clock seam for
  all of the above (heartbeats, deadlines), allowlisted in the REP002 lint
  policy.
* :mod:`repro.reliability.chaos` -- the chaos-smoke harness CI runs: a
  sweep and a sharded plan executed under an injected fault mix, with
  per-cell ``sample_stream_hash`` parity asserted against fault-free runs.
"""

from repro.reliability.clock import monotonic_now, wall_now
from repro.reliability.faults import (
    FAULT_PLAN_ENV,
    FaultPlan,
    FaultRule,
    InjectedCrashError,
    InjectedTransientError,
    active_fault_plan,
    deactivate_fault_plan,
    fault_point,
    injected_faults,
    mark_worker_process,
)
from repro.reliability.retry import (
    AttemptRecord,
    RetryPolicy,
    classify_exception,
)
from repro.reliability.watchdog import WatchdogPolicy

__all__ = [
    "FAULT_PLAN_ENV",
    "AttemptRecord",
    "FaultPlan",
    "FaultRule",
    "InjectedCrashError",
    "InjectedTransientError",
    "RetryPolicy",
    "WatchdogPolicy",
    "active_fault_plan",
    "classify_exception",
    "deactivate_fault_plan",
    "fault_point",
    "injected_faults",
    "mark_worker_process",
    "monotonic_now",
    "wall_now",
]
