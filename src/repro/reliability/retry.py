"""Failure classification and bounded deterministic backoff for retries.

Retrying is safe in this codebase precisely because every cell is a pure
function of its spec (the bit-identity contract): a second attempt cannot
produce *different* correct bytes, only the same ones.  What retrying must
not do is mask real bugs or loop forever, so the policy here is narrow:

* **Classification** happens where the exception object still exists
  (inside the worker, in :func:`classify_exception`): infrastructure-shaped
  failures -- injected faults, ``OSError`` on store I/O, broken pools,
  timeouts -- are *transient*; everything else is *permanent* and is
  reported immediately, exactly as before.
* **Budgeted**: a transient cell retries at most ``max_retries`` times,
  then is quarantined as permanent with its full attempt lineage attached.
* **Deterministic-failure detection**: a cell that fails with the same
  traceback twice in a row is quarantined immediately -- replaying a
  deterministic crash a third time cannot end differently.
* **Seeded backoff**: the delay before attempt *n* is a pure function of
  ``(backoff seed, cell fingerprint, n)``, exponentially growing and
  capped, so retry timing is reproducible and two runners sharing a store
  do not retry in lockstep.
"""

from __future__ import annotations

import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.reliability.faults import InjectedCrashError, InjectedTransientError

#: Classification labels carried on error results.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: Exception types treated as retry-worthy infrastructure failures.  OSError
#: covers torn/failed store I/O (shared directories, network filesystems);
#: the injected types are the chaos harness's stand-ins for all of them.
TRANSIENT_EXCEPTIONS = (
    InjectedTransientError,
    InjectedCrashError,
    BrokenProcessPool,
    OSError,
    TimeoutError,
)


def classify_exception(exc: BaseException) -> str:
    """``"transient"`` for infrastructure-shaped failures, else ``"permanent"``.

    Runs where the exception object still exists (the worker process), so
    classification can use ``isinstance`` over the real type hierarchy
    instead of parsing traceback text in the orchestrator.
    """
    return TRANSIENT if isinstance(exc, TRANSIENT_EXCEPTIONS) else PERMANENT


@dataclass
class AttemptRecord:
    """One failed attempt in a cell's retry lineage."""

    attempt: int
    error_kind: str
    error_type: str
    backoff_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (stored on :class:`CellResult`)."""
        return {
            "attempt": self.attempt,
            "error_kind": self.error_kind,
            "error_type": self.error_type,
            "backoff_s": self.backoff_s,
        }


def _backoff_fraction(seed: int, key: str, attempt: int) -> float:
    """Deterministic jitter draw in [0, 1) for one backoff decision."""
    text = "\x1f".join(str(part) for part in (seed, key, attempt))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry transient failures, and how long to wait.

    ``backoff_s`` for attempt *n* (the delay before the *n*-th retry) is
    ``base * 2**(n-1)`` scaled by a deterministic jitter in [0.5, 1.5) and
    capped at ``backoff_cap_s`` -- bounded, seeded, and identical across
    runs, so chaos tests replay exactly.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_s(self, key: str, attempt: int) -> float:
        """Seeded, capped exponential delay before retry ``attempt`` (>= 1)."""
        if attempt < 1:
            return 0.0
        jitter = 0.5 + _backoff_fraction(self.seed, key, attempt)
        return min(
            self.backoff_cap_s, self.backoff_base_s * (2.0 ** (attempt - 1)) * jitter
        )

    def should_retry(self, error_kind: Optional[str], attempt: int) -> bool:
        """Whether a failure of ``error_kind`` at ``attempt`` earns a retry."""
        return error_kind == TRANSIENT and attempt < self.max_retries


@dataclass
class RetryState:
    """Per-cell retry bookkeeping owned by the orchestrator.

    Tracks the attempt counter, the accumulated lineage and the previous
    failure's identity (for deterministic-failure detection).  One instance
    per distinct cell fingerprint, created lazily on the first failure.
    """

    attempt: int = 0
    lineage: List[AttemptRecord] = field(default_factory=list)
    last_error: Optional[str] = None

    def record_failure(
        self, error_kind: str, error_type: str, error_text: Optional[str]
    ) -> bool:
        """Account one failed attempt; ``True`` if it repeated the previous one.

        ``error_text`` is the normalised failure identity (traceback); two
        consecutive identical failures mark the cell deterministic, which
        callers quarantine as permanent regardless of retry budget.
        """
        repeated = error_text is not None and error_text == self.last_error
        self.lineage.append(
            AttemptRecord(
                attempt=self.attempt, error_kind=error_kind, error_type=error_type
            )
        )
        self.last_error = error_text
        self.attempt += 1
        return repeated

    def lineage_dicts(self) -> List[Dict[str, Any]]:
        """The lineage as JSON-clean dicts (what ``CellResult`` carries)."""
        return [record.to_dict() for record in self.lineage]
