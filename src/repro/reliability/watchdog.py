"""Per-cell timeout budgets for the sweep runner's worker watchdog.

A hung worker (deadlocked native code, an injected hang, a stalled NFS
read) must not stall a thousand-cell sweep forever.  The watchdog gives
every pool job a wall-clock budget derived from the same
:class:`~repro.experiments.distributed.CostModel` that prices shard plans:
the model already estimates how long each cell *should* take, so "hung"
is simply "took a generous multiple of that estimate".  The runner
abandons expired futures, rebuilds its pool and reschedules the affected
cells with a bumped attempt counter -- recovery, not failure, because the
bit-identity contract guarantees the rescheduled cell produces the same
bytes.

The policy object here is deliberately duck-typed over the cost model
(anything with ``cell_cost_s``/``training_cost_s``), so this module does
not import :mod:`repro.experiments.distributed` -- which imports the
runner, which imports this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class WatchdogPolicy:
    """Wall-clock budgets for pool jobs, priced from a cost model.

    ``multiplier`` scales the cost model's estimate (generous by default:
    estimates come from one benchmark machine, workers may be far slower),
    ``floor_s`` bounds the budget from below (tiny cells must not get
    millisecond budgets that normal scheduling jitter would trip), and
    ``cell_timeout_s`` -- the ``--cell-timeout`` override -- replaces the
    derived per-cell budget with a flat one.
    """

    cost_model: Optional[Any] = None
    multiplier: float = 20.0
    floor_s: float = 60.0
    cell_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")
        if self.floor_s < 0:
            raise ValueError("floor_s must be non-negative")
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError("cell_timeout_s must be positive")

    def cell_budget_s(self, cell: Any) -> Optional[float]:
        """Budget for one cell's evaluation, or ``None`` for no limit."""
        if self.cell_timeout_s is not None:
            return self.cell_timeout_s
        if self.cost_model is None:
            return None
        return max(self.floor_s, self.multiplier * self.cost_model.cell_cost_s(cell))

    def batch_budget_s(self, cells: Any) -> Optional[float]:
        """Budget for one batched group: the sum of its members' budgets.

        A batch future completes only when every lane has finished, so its
        budget is the group's total -- still bounded, and never tighter than
        any single member's own budget.
        """
        budgets = [self.cell_budget_s(cell) for cell in cells]
        if any(budget is None for budget in budgets):
            return None
        return sum(budgets)

    def training_budget_s(self, cell: Any) -> Optional[float]:
        """Budget for one training job (spec or fleet round-0 device)."""
        if self.cell_timeout_s is not None:
            # The flat override is per job, training included: an operator
            # pinning timeouts wants *no* job to outlive the pin.
            return self.cell_timeout_s
        if self.cost_model is None:
            return None
        return max(
            self.floor_s, self.multiplier * self.cost_model.training_cost_s(cell)
        )
