"""Setuptools entry point.

Carries the package metadata (pyproject.toml only declares the build system
and tool configuration) so the package can be installed in editable mode on
systems without the ``wheel`` package -- offline environments fall back to
the legacy ``setup.py develop`` path.  Installing exposes the ``repro-sweep``
console script (the scenario-matrix sweep CLI in
:mod:`repro.experiments.cli`).
"""

from setuptools import find_packages, setup

setup(
    name="repro-next-mpsoc",
    version="1.0.0",
    description=(
        "Reproduction of 'User Interaction Aware Reinforcement Learning for "
        "Power and Thermal Efficiency of CPU-GPU Mobile MPSoCs' (DATE 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-sweep = repro.experiments.cli:main",
            "repro-lint = repro.lint.cli:console_main",
        ],
    },
)
