"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed in editable
mode on systems without the ``wheel`` package (offline environments fall back
to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
