"""Shard plan/merge overhead benchmark: the numbers behind ``BENCH_shard_merge.json``.

Distributed sharding only pays off if its bookkeeping is negligible next to
the cells it distributes, so this benchmark prices the three machinery costs
of :mod:`repro.experiments.distributed`:

* ``plan_cells_per_s`` -- shard-planner throughput (cell expansion,
  fingerprinting, cost amortisation and balanced assignment) over the
  ``baselines`` matrix replicated to several hundred cells,
* ``merge_entries_per_s`` -- merge-engine throughput unioning synthetic
  shard caches (the dominant merge cost: per-entry read + conflict check +
  atomic copy), including a fully overlapping shard so the duplicate
  verification path is priced too, and
* ``smoke_roundtrip_overhead_s`` -- end-to-end wall overhead of
  plan -> run 3 shards -> merge over the plain unsharded run of the same
  smoke matrix (full profile only; this includes real cell execution twice).

Run standalone::

    python benchmarks/run_benchmarks.py --only shard_merge
    python benchmarks/bench_shard_merge.py --fast
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):  # standalone execution without `pip install -e .`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.experiments.distributed import (
    merge_shard_stores,
    merge_shards,
    plan_shards,
    run_shard,
    shard_directory,
)
from repro.experiments.matrix import ScenarioMatrix, named_matrix
from repro.experiments.runner import SweepRunner, execute_cell

#: Planner input size per profile (seeds replicate the baselines matrix).
PLAN_SEEDS = {"full": 10, "fast": 2}
#: Synthetic cache entries per shard for the merge measurement.
MERGE_ENTRIES = {"full": 200, "fast": 40}
MERGE_SHARDS = 3


def _best_of(repeat, fn):
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _plan_matrix(profile: str) -> ScenarioMatrix:
    base = named_matrix("baselines")
    from dataclasses import replace

    return replace(base, seeds=tuple(range(PLAN_SEEDS[profile])))


def _synthetic_shard_caches(root: str, profile: str) -> list:
    """Shard cache dirs filled with realistic entries under fake fingerprints.

    One real smoke cell is executed once and its JSON document replicated
    under distinct fingerprint-shaped names, so the merge engine reads,
    checks and copies the same byte volume a real merge would.  The last
    shard duplicates the first one entirely, exercising the
    content-identity verification path.
    """
    cell = named_matrix("smoke").cells()[0]
    payload = json.dumps(execute_cell(cell).to_dict())
    entries = MERGE_ENTRIES[profile]
    cache_dirs = []
    for shard in range(MERGE_SHARDS):
        cache_dir = os.path.join(root, f"shard-{shard:03d}", "cache")
        os.makedirs(cache_dir, exist_ok=True)
        cache_dirs.append(cache_dir)
        source = shard - 1 if shard == MERGE_SHARDS - 1 else shard
        for index in range(entries):
            name = f"{source:04x}{index:08x}{'0' * 12}.json"
            with open(os.path.join(cache_dir, name), "w", encoding="utf-8") as f:
                f.write(payload)
    return cache_dirs


def measure(profile: str = "full", repeat: int = 3) -> dict:
    """Run all measurements and return the results dict."""
    results = {}

    # -- planner throughput --------------------------------------------------
    matrix = _plan_matrix(profile)
    cells = len(matrix)
    plan_wall, manifest = _best_of(repeat, lambda: plan_shards(matrix, 8))
    results["plan_cells"] = cells
    results["plan_wall_s"] = round(plan_wall, 5)
    results["plan_cells_per_s"] = round(cells / plan_wall, 1)

    # -- merge throughput ----------------------------------------------------
    def merge_once():
        with tempfile.TemporaryDirectory() as root:
            cache_dirs = _synthetic_shard_caches(root, profile)
            started = time.perf_counter()
            counters = merge_shard_stores(cache_dirs, os.path.join(root, "merged"))
            return time.perf_counter() - started, counters

    best = None
    counters = None
    for _ in range(repeat):
        elapsed, counters = merge_once()
        if best is None or elapsed < best:
            best = elapsed
    total_entries = counters["results"] + counters["duplicates"]
    results["merge_entries"] = total_entries
    results["merge_duplicates"] = counters["duplicates"]
    results["merge_wall_s"] = round(best, 5)
    results["merge_entries_per_s"] = round(total_entries / best, 1)

    # -- end-to-end smoke round trip (full profile only) ---------------------
    if profile == "full":
        smoke = named_matrix("smoke")

        def unsharded():
            return SweepRunner(max_workers=1).run(smoke)

        plain_wall, _ = _best_of(repeat, unsharded)

        def roundtrip():
            with tempfile.TemporaryDirectory() as root:
                manifest = plan_shards(smoke, 3)
                for index in range(3):
                    run_shard(manifest, index, shard_directory(root, index))
                merge_shards(
                    manifest,
                    [shard_directory(root, index) for index in range(3)],
                    os.path.join(root, "merged"),
                )

        sharded_wall, _ = _best_of(repeat, roundtrip)
        results["smoke_unsharded_s"] = round(plain_wall, 4)
        results["smoke_roundtrip_s"] = round(sharded_wall, 4)
        results["smoke_roundtrip_overhead_s"] = round(sharded_wall - plain_wall, 4)

    return results


def build_report(profile: str, repeat: int) -> dict:
    """Measure and assemble the full BENCH_shard_merge payload."""
    return {
        "benchmark": "shard_merge",
        "schema": 1,
        "profile": profile,
        "repeat": repeat,
        "after": measure(profile=profile, repeat=repeat),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="CI smoke profile")
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output", default="BENCH_shard_merge.json", help="report JSON path"
    )
    args = parser.parse_args(argv)
    report = build_report("fast" if args.fast else "full", args.repeat)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(json.dumps(report, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
