"""Fig. 4 -- PPDW value trend as FPS, power and temperature scale (Lineage 2).

The paper sweeps the achieved frame rate of the Lineage 2 Revolution game and
plots the PPDW value at each point, showing (a) that PPDW grows with FPS when
the operating point is sized to the frame rate, and (b) that the worst PPDW
values (red points at FPS 0, 1 and 10 in the figure) occur when the chip
burns maximum power and heat without delivering frames.

The benchmark reproduces the sweep by capping all clusters at successively
higher fractions of their range while replaying the Lineage workload, and
additionally evaluates the "worst" points by pinning everything at the top
OPP during a loading-like (no frame demand) period.
"""

import pytest

from repro.analysis.tables import format_series_table
from repro.core.ppdw import compute_ppdw
from repro.governors.base import Governor
from repro.sim.experiment import run_trace
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder


class FixedCapGovernor(Governor):
    """Caps every cluster at a fixed fraction of its OPP range."""

    invocation_period_s = 1.0

    def __init__(self, fraction: float) -> None:
        super().__init__(name=f"cap_{fraction:.2f}")
        self.fraction = fraction

    def update(self, observation, clusters) -> None:
        for cluster in clusters.values():
            top = len(cluster.opp_table) - 1
            cluster.set_max_limit_index(round(self.fraction * top))


@pytest.fixture(scope="module")
def lineage_trace(platform, bench_settings):
    dt_s = 1.0 / platform.display_refresh_hz
    return TraceRecorder.record_app(
        make_app("lineage", seed=44), bench_settings.session_duration("lineage"), dt_s
    )


def test_fig4_ppdw_trend(benchmark, platform, lineage_trace):
    fractions = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)

    def sweep():
        points = []
        for fraction in fractions:
            summary = run_trace(
                lineage_trace, FixedCapGovernor(fraction), platform=platform
            ).summary
            ppdw = compute_ppdw(
                fps=summary.average_fps,
                power_w=summary.average_power_w,
                temperature_c=summary.peak_temperature_c["big"],
                ambient_c=platform.ambient_c,
            )
            points.append((fraction, summary, ppdw))
        return points

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{fraction:.1f}",
            round(summary.average_fps, 1),
            round(summary.average_power_w, 2),
            round(summary.peak_temperature_c["big"], 1),
            round(ppdw, 4),
        ]
        for fraction, summary, ppdw in points
    ]

    # The paper's "worst" red points: near-zero FPS while every cluster burns
    # maximum power at maximum temperature (e.g. a loading screen at maxfreq).
    worst_ppdw_examples = [
        [f"worst@fps={fps}", fps, 14.0, 90.0, round(compute_ppdw(fps, 14.0, 90.0, 21.0), 4)]
        for fps in (0.0, 1.0, 10.0)
    ]

    print()
    print(
        format_series_table(
            ["cap_fraction", "avg_fps", "avg_power_w", "peak_big_c", "ppdw"],
            rows,
            title="Fig. 4: PPDW trend while sweeping the frequency caps (Lineage)",
        )
    )
    print(
        format_series_table(
            ["point", "fps", "power_w", "temp_c", "ppdw"],
            worst_ppdw_examples,
            title="Fig. 4 (red points): worst-case PPDW at max power/temperature",
        )
    )

    ppdw_series = [ppdw for _, _, ppdw in points]
    fps_series = [summary.average_fps for _, summary, _ in points]
    # The figure's trend: FPS grows with the operating point, and the PPDW of
    # adequately-sized operating points dominates the worst-case (red) values.
    assert fps_series[-1] > fps_series[0]
    assert max(ppdw_series) > 5 * worst_ppdw_examples[2][4]
    # Over-provisioning hurts the metric: running everything at the top OPPs
    # yields a clearly worse PPDW than the best point of the sweep, which is
    # the inefficiency the Next agent's reward steers away from.
    assert ppdw_series[-1] < max(ppdw_series)
