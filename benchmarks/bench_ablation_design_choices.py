"""Ablations of the design choices the paper fixes from empirical data.

Section IV fixes three design parameters from on-device experimentation:

* the frame window length (4 s "generates the best frame rate pattern
  analysis"),
* the frame-rate quantisation (30 levels gave the best training time /
  reward trade-off -- swept separately in ``bench_fig6_training_time``), and
* the agent invocation period (100 ms).

This benchmark sweeps the frame-window length and the invocation period on
one application and reports the resulting power, QoS and PPDW, so the
sensitivity of the result to those choices can be inspected.
"""

import pytest

from repro.analysis.tables import format_series_table
from repro.core.agent import AgentConfig
from repro.core.frame_window import FrameWindowConfig
from repro.core.governor import NextGovernor
from repro.sim.experiment import run_trace, train_next_governor
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder

ABLATION_APP = "facebook"


@pytest.fixture(scope="module")
def ablation_trace(platform, bench_settings):
    dt_s = 1.0 / platform.display_refresh_hz
    return TraceRecorder.record_app(
        make_app(ABLATION_APP, seed=61), bench_settings.session_duration(ABLATION_APP), dt_s
    )


def _train_and_evaluate(config, platform, bench_settings, trace, seed=29):
    governor = NextGovernor(config=config, seed=seed)
    train_next_governor(
        governor,
        ABLATION_APP,
        platform=platform,
        episodes=max(6, bench_settings.training_episodes // 2),
        episode_duration_s=bench_settings.training_episode_s,
        seed=seed,
        td_error_threshold=0.0,
    )
    governor.set_training(False)
    return run_trace(trace, governor, platform=platform).summary


def test_ablation_frame_window_length(benchmark, platform, bench_settings, ablation_trace):
    window_lengths = (1.0, 4.0, 8.0)

    def sweep():
        summaries = {}
        for window_s in window_lengths:
            config = AgentConfig(frame_window=FrameWindowConfig(window_s=window_s))
            summaries[window_s] = _train_and_evaluate(
                config, platform, bench_settings, ablation_trace
            )
        return summaries

    summaries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{window_s:.0f}s",
            round(summary.average_power_w, 2),
            round(summary.frame_delivery_ratio, 2),
            round(summary.average_ppdw, 3),
        ]
        for window_s, summary in summaries.items()
    ]
    print()
    print(
        format_series_table(
            ["frame_window", "avg_power_w", "frame_delivery", "avg_ppdw"],
            rows,
            title="Ablation: frame-window length (paper uses 4 s)",
        )
    )
    for summary in summaries.values():
        assert summary.average_power_w > 0.5
        assert summary.frame_delivery_ratio > 0.7


def test_ablation_invocation_period(benchmark, platform, bench_settings, ablation_trace):
    periods = (0.05, 0.1, 0.5)

    def sweep():
        summaries = {}
        for period_s in periods:
            config = AgentConfig(invocation_period_s=period_s)
            summaries[period_s] = _train_and_evaluate(
                config, platform, bench_settings, ablation_trace, seed=31
            )
        return summaries

    summaries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{period_s * 1000:.0f}ms",
            round(summary.average_power_w, 2),
            round(summary.frame_delivery_ratio, 2),
            round(summary.average_ppdw, 3),
        ]
        for period_s, summary in summaries.items()
    ]
    print()
    print(
        format_series_table(
            ["invocation_period", "avg_power_w", "frame_delivery", "avg_ppdw"],
            rows,
            title="Ablation: agent invocation period (paper uses 100 ms)",
        )
    )
    for summary in summaries.values():
        assert summary.frame_delivery_ratio > 0.7
