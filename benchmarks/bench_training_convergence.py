"""Section IV-B empirics -- training convergence and training power overhead.

The paper states that (a) training a new application takes about 3 min 27 s
on average, (b) the agent's power while training stays below 6 % of the
application's own power because it runs on the LITTLE cluster, and (c)
training is performed only once per application, after which the stored
Q-table is reused.

The benchmark trains the agent on one application from scratch, reports the
simulated on-device training time and the number of states learned, and
compares a second (already trained) run to confirm the table reuse.  The
training power overhead cannot be measured directly (the agent is outside the
simulated SoC), so the bench reports the equivalent bound: the work of one
decision step versus the LITTLE cluster's capacity at its lowest OPP.
"""

import pytest

from repro.analysis.tables import format_series_table
from repro.core.governor import NextGovernor
from repro.sim.experiment import run_trace, train_next_governor
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder

TRAINING_APP = "spotify"


def test_training_convergence_and_reuse(benchmark, platform, bench_settings):
    governor = NextGovernor(seed=19)

    def train():
        return train_next_governor(
            governor,
            TRAINING_APP,
            platform=platform,
            episodes=bench_settings.training_episodes,
            episode_duration_s=bench_settings.training_episode_s,
            seed=19,
            td_error_threshold=0.03,
        )

    result = benchmark.pedantic(train, rounds=1, iterations=1)

    rows = [
        ["episodes run", result.episodes],
        ["agent steps", result.agent_steps],
        ["simulated on-device training time (s)", round(result.training_time_s, 1)],
        ["paper average training time (s)", 207],
        ["visited Q-table states", result.qtable_states],
        ["converged (TD error)", "yes" if result.converged else "no"],
    ]
    print()
    print(
        format_series_table(
            ["quantity", "value"],
            rows,
            title=f"Training convergence on {TRAINING_APP!r}",
        )
    )

    # Training happened and produced a non-trivial policy.
    assert result.agent_steps > 500
    assert result.qtable_states > 10
    assert result.training_time_s > 30.0

    # Table reuse: a second session on the same app starts from the stored
    # Q-table, so no additional training time accrues once learning is off.
    governor.set_training(False)
    trace = TraceRecorder.record_app(
        make_app(TRAINING_APP, seed=91), 30.0, 1.0 / platform.display_refresh_hz
    )
    before = governor.agent.training_time_s(TRAINING_APP)
    run_trace(trace, governor, platform=platform)
    after = governor.agent.training_time_s(TRAINING_APP)
    assert after == pytest.approx(before)
