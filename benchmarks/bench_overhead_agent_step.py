"""Overhead analysis -- cost of one Next agent decision step.

Section V reports that one Next decision costs about 227 ns on the Note 9's
LITTLE cluster (a compiled implementation on real hardware).  The
reproduction's agent is pure Python running on a desktop CPU, so the absolute
number is not comparable; the benchmark instead measures the per-step cost of
the full decision path (frame-window read, state discretisation, Q update,
action selection and actuation) and asserts that it stays far below the
100 ms invocation period, i.e. the agent's overhead is negligible relative to
its own control interval -- which is the paper's actual point.
"""

import pytest

from repro.core.agent import NextAgent
from repro.governors.base import GovernorObservation
from repro.soc.platform import exynos9810


@pytest.fixture(scope="module")
def agent_and_clusters():
    platform = exynos9810()
    clusters = platform.build_clusters()
    agent = NextAgent(seed=3)
    agent.set_application("facebook")
    # Warm up the frame window so the step exercises the full path.
    for i in range(200):
        agent.observe_frame(i * 0.025, 45.0)
    return agent, clusters


def _observation(clusters, time_s):
    return GovernorObservation(
        time_s=time_s,
        dt_s=0.1,
        fps=45.0,
        utilisations={name: 0.4 for name in clusters},
        frequencies_mhz={n: c.current_frequency_mhz for n, c in clusters.items()},
        max_limits_mhz={n: c.max_limit_frequency_mhz for n, c in clusters.items()},
        power_w=3.2,
        temperature_big_c=48.0,
        temperature_device_c=31.0,
        frames_dropped=0,
        frames_demanded=4,
    )


def test_overhead_of_one_agent_step(benchmark, agent_and_clusters):
    agent, clusters = agent_and_clusters
    counter = {"time": 0.0}

    def one_step():
        counter["time"] += 0.1
        agent.step(_observation(clusters, counter["time"]), clusters)

    benchmark(one_step)

    mean_s = benchmark.stats.stats.mean
    print(
        f"\nMean Next decision step: {mean_s * 1e6:.1f} us "
        "(paper reports ~227 ns for the compiled on-device implementation)"
    )
    # The agent runs every 100 ms; its own decision cost must be a vanishing
    # fraction of that interval (< 1 %).
    assert mean_s < 0.001


def test_overhead_of_frame_window_sampling(benchmark, agent_and_clusters):
    agent, _ = agent_and_clusters
    counter = {"time": 1000.0}

    def one_sample():
        counter["time"] += 0.025
        agent.observe_frame(counter["time"], 37.0)

    benchmark(one_sample)
    # The 25 ms sampling path is even cheaper than the decision step.
    assert benchmark.stats.stats.mean < 0.0005
