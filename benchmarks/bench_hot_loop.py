"""Hot-loop throughput benchmark: the numbers behind ``BENCH_hotloop.json``.

Measures the three quantities the compiled simulation kernel (PR 4) set out
to improve, on the workloads every experiment in this reproduction funnels
through:

* ``fig1_ticks_per_sec`` -- simulation ticks per wall-clock second replaying
  the paper's Fig. 1 mixed session (home -> facebook -> spotify) under the
  stock ``schedutil`` governor,
* ``cold_train_episode_s`` -- wall time of one cold ``Next`` training episode
  (training throughput bounds every RL experiment and federated round), and
* ``sweep_cell_wall_s`` -- wall time of one scenario-matrix cell end to end
  (trace recording + simulation + summary), the unit of ``repro-sweep`` cost.

Run standalone::

    python benchmarks/run_benchmarks.py            # full profile
    python benchmarks/bench_hot_loop.py --fast     # CI smoke (<= 20 sim-s)
    python benchmarks/bench_hot_loop.py --check-against BENCH_hotloop.json

``--check-against`` is the CI regression gate: it fails (exit code 1) only if
the measured Fig. 1 throughput regressed more than ``--max-regression`` (2x
by default) versus the committed baseline -- deliberately generous so shared
CI runners do not flake the build.

The ``before`` numbers embedded below were measured on the pre-kernel seed
implementation (PR 3 tree) on the same machine that produced the committed
``BENCH_hotloop.json``, with the same methodology (best of ``--repeat``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # standalone execution without `pip install -e .`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.core.governor import NextGovernor
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import execute_cell
from repro.sim.experiment import (
    make_governor,
    record_session_trace,
    run_trace,
    train_next_governor,
)
from repro.soc.platform import exynos9810
from repro.workloads.session import FIGURE1_SESSION, SessionSegment

#: Pre-kernel (seed implementation) reference numbers, full profile.
SEED_BASELINE = {
    "fig1_ticks_per_sec": 12708.7,
    "cold_train_episode_s": 0.1936,
    "sweep_cell_wall_s": 0.02164,
}

#: Simulated seconds of the Fig. 1 session replayed per profile.  The full
#: session is 210 s; the fast profile keeps the whole benchmark under 20
#: simulated seconds for the CI smoke job.
FIG1_DURATION_S = {"full": None, "fast": 12.0}
TRAIN_EPISODE_S = {"full": 30.0, "fast": 5.0}
SWEEP_CELL_S = {"full": 4.0, "fast": 3.0}


def _best_of(repeat, fn):
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def measure(profile: str = "full", repeat: int = 3) -> dict:
    """Run all three measurements and return the results dict."""
    platform = exynos9810()

    # -- Fig. 1 schedutil trace throughput -----------------------------------
    segments = FIGURE1_SESSION.segments
    limit = FIG1_DURATION_S[profile]
    if limit is not None:
        scale = limit / FIGURE1_SESSION.total_duration_s
        segments = tuple(
            SessionSegment(seg.app_name, max(1.0, seg.duration_s * scale))
            for seg in segments
        )
    trace = record_session_trace(segments, platform=platform, seed=2020)
    fig1_wall, _ = _best_of(
        repeat, lambda: run_trace(trace, make_governor("schedutil"), platform=platform)
    )
    fig1_ticks_per_sec = len(trace) / fig1_wall

    # -- cold-train episode throughput ---------------------------------------
    episode_s = TRAIN_EPISODE_S[profile]

    def train_once():
        return train_next_governor(
            NextGovernor(seed=7),
            "facebook",
            platform=platform,
            episodes=1,
            episode_duration_s=episode_s,
            seed=7,
            td_error_threshold=0.0,
        )

    train_wall, _ = _best_of(repeat, train_once)

    # -- one sweep cell end to end -------------------------------------------
    cell = ScenarioMatrix.build(
        name="bench",
        governors=("schedutil",),
        apps=("facebook",),
        seeds=(0,),
        duration_s=SWEEP_CELL_S[profile],
    ).cells()[0]
    cell_wall, cell_result = _best_of(repeat, lambda: execute_cell(cell))
    if not cell_result.ok:
        raise RuntimeError(f"benchmark sweep cell failed: {cell_result.error}")

    return {
        "fig1_ticks_per_sec": round(fig1_ticks_per_sec, 1),
        "fig1_ticks": len(trace),
        "fig1_wall_s": round(fig1_wall, 4),
        "cold_train_episode_s": round(train_wall, 4),
        "cold_train_sim_s_per_wall_s": round(episode_s / train_wall, 1),
        "sweep_cell_wall_s": round(cell_wall, 5),
    }


def build_report(profile: str, repeat: int) -> dict:
    """Measure and assemble the full BENCH_hotloop payload."""
    results = measure(profile=profile, repeat=repeat)
    report = {
        "benchmark": "hotloop",
        "schema": 1,
        "profile": profile,
        "repeat": repeat,
        "before": dict(SEED_BASELINE),
        "after": results,
    }
    if profile == "full":
        report["speedup"] = {
            "fig1_ticks_per_sec": round(
                results["fig1_ticks_per_sec"] / SEED_BASELINE["fig1_ticks_per_sec"], 2
            ),
            "cold_train_episode_s": round(
                SEED_BASELINE["cold_train_episode_s"] / results["cold_train_episode_s"], 2
            ),
            "sweep_cell_wall_s": round(
                SEED_BASELINE["sweep_cell_wall_s"] / results["sweep_cell_wall_s"], 2
            ),
        }
    return report


def check_regression(report: dict, baseline: dict, max_regression: float) -> int:
    """Gate the measured throughput against a committed baseline report."""
    reference = baseline["after"]["fig1_ticks_per_sec"]
    measured = report["after"]["fig1_ticks_per_sec"]
    floor = reference / max_regression
    print(
        f"regression gate: measured {measured:.0f} ticks/s vs committed "
        f"{reference:.0f} ticks/s (floor {floor:.0f}, max regression {max_regression}x)"
    )
    if measured < floor:
        print("FAIL: hot loop regressed beyond the allowed factor")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke profile (<= 20 simulated seconds)"
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output", default="BENCH_hotloop.json", help="where to write the report JSON"
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="committed baseline JSON to gate against (CI regression check)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail only if ticks/sec dropped by more than this factor",
    )
    args = parser.parse_args(argv)

    # Load the baseline BEFORE writing anything: with the default --output the
    # gate may point at the very file we are about to overwrite, and gating a
    # measurement against itself would always pass.
    baseline = None
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    profile = "fast" if args.fast else "full"
    report = build_report(profile=profile, repeat=args.repeat)
    print(json.dumps(report, indent=2))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    if baseline is not None:
        return check_regression(report, baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
