"""Scenario-matrix harness throughput: parallel sweep vs sequential loop.

Not a paper figure: this benchmark measures the scaling substrate added for
multi-scenario studies.  It runs the same 2-governor x 2-app x 2-seed matrix
(8 cells) once through the in-process sequential path and once through the
process pool, asserts the two produce identical per-cell summaries (the
determinism contract the result cache relies on), and reports the speed-up.
"""

import os

from repro.analysis.tables import format_series_table
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import run_matrix


def _bench_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        name="bench-sweep",
        governors=("schedutil", "powersave"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=20.0,
    )


def test_parallel_sweep_matches_sequential(benchmark):
    matrix = _bench_matrix()
    sequential = run_matrix(matrix, max_workers=1)

    workers = min(4, os.cpu_count() or 1)
    pooled = benchmark.pedantic(
        lambda: run_matrix(matrix, max_workers=workers), rounds=1, iterations=1
    )

    assert all(result.ok for result in pooled.results)
    assert [result.summary for result in pooled.results] == [
        result.summary for result in sequential.results
    ]

    print()
    print(
        format_series_table(
            ["path", "cells", "total_cell_time_s"],
            [
                ["sequential", len(sequential), sum(r.elapsed_s for r in sequential.results)],
                [f"pool({workers})", len(pooled), sum(r.elapsed_s for r in pooled.results)],
            ],
            title="Scenario-matrix harness: per-cell compute time",
        )
    )
