"""Fig. 3 -- power and big-CPU temperature of the mixed session: schedutil vs Next.

The paper runs the same home -> Facebook -> Spotify session under stock
``schedutil`` and under a fully trained Next agent and reports the power and
big-cluster temperature traces, with 41.88 % average power saving and a
21.02 % reduction in (average) big-CPU temperature for Next.

The benchmark replays one recorded demand trace of that session under both
governors, prints the traces plus the aggregate comparison, and asserts the
figure's direction: Next consumes less power and runs cooler while delivering
essentially the same frames.
"""

import pytest

from repro.analysis.compare import percentage_saving
from repro.analysis.tables import format_series_table
from repro.sim.experiment import (
    make_governor,
    record_session_trace,
    run_trace,
    select_best_next_governor,
)
from repro.workloads.session import FIGURE1_SESSION

SESSION_APPS = ("home", "facebook", "spotify")


@pytest.fixture(scope="module")
def fig3_trace(platform):
    return record_session_trace(FIGURE1_SESSION.segments, platform=platform, seed=33)


@pytest.fixture(scope="module")
def fig3_next_governor(platform, bench_settings):
    return select_best_next_governor(
        list(SESSION_APPS),
        platform=platform,
        candidate_seeds=bench_settings.candidate_seeds,
        episodes=bench_settings.training_episodes,
        episode_duration_s=bench_settings.training_episode_s,
    )


def test_fig3_power_and_temperature_trace(benchmark, platform, fig3_trace, fig3_next_governor):
    schedutil_result = run_trace(fig3_trace, make_governor("schedutil"), platform=platform)
    next_result = benchmark.pedantic(
        lambda: run_trace(fig3_trace, fig3_next_governor, platform=platform),
        rounds=1,
        iterations=1,
    )

    sched = schedutil_result.recorder
    nxt = next_result.recorder
    rows = []
    for sample_sched, sample_next in zip(sched.resample(9.0), nxt.resample(9.0)):
        rows.append(
            [
                round(sample_sched.time_s),
                round(sample_sched.power_total_w, 2),
                round(sample_next.power_total_w, 2),
                round(sample_sched.temperatures_c["big"], 1),
                round(sample_next.temperatures_c["big"], 1),
            ]
        )
    print()
    print(
        format_series_table(
            ["time_s", "pow_schedutil_w", "pow_next_w", "temp_schedutil_c", "temp_next_c"],
            rows,
            title="Fig. 3: power and big-CPU temperature, schedutil vs Next",
        )
    )

    s_summary = schedutil_result.summary
    n_summary = next_result.summary
    power_saving = percentage_saving(s_summary.average_power_w, n_summary.average_power_w)
    avg_temp_reduction = percentage_saving(
        s_summary.average_temperature_c["big"], n_summary.average_temperature_c["big"]
    )
    print(
        f"\nAvg power schedutil: {s_summary.average_power_w:.3f} W | "
        f"Next: {n_summary.average_power_w:.3f} W | saving: {power_saving:.1f}% "
        f"(paper: 41.88%)"
    )
    print(
        f"Avg big temp schedutil: {s_summary.average_temperature_c['big']:.1f} C | "
        f"Next: {n_summary.average_temperature_c['big']:.1f} C | reduction: "
        f"{avg_temp_reduction:.1f}% (paper: 21.02%)"
    )
    print(
        f"Frame delivery: schedutil {s_summary.frame_delivery_ratio:.2f} | "
        f"Next {n_summary.frame_delivery_ratio:.2f}"
    )

    # Shape assertions: Next must save a meaningful amount of power and heat,
    # without trading away the delivered frames.
    assert power_saving > 5.0
    assert n_summary.average_temperature_c["big"] < s_summary.average_temperature_c["big"]
    assert n_summary.frame_delivery_ratio > 0.85
