"""Fig. 6 -- training time vs frame-rate quantisation, online vs cloud.

Section IV-B quantises the frame-rate axis of the RL state to keep training
time manageable and Fig. 6 plots the training time as a function of the
chosen frame-rate level (10..60), for on-device ("online") training and for
offline training in the cloud (a 16-core Xeon, with up to 4 s of
communication overhead).

The benchmark trains the agent on the Facebook workload at several
quantisation levels, measures the *simulated on-device time* until the TD
error converges (or the training budget runs out), and derives the cloud time
from the :class:`~repro.core.federated.CloudTrainer` wall-clock model.  The
paper's qualitative findings are asserted: training time grows with the
number of levels, and the cloud is several times faster despite the
communication overhead.
"""

import pytest

from repro.analysis.tables import format_series_table
from repro.core.agent import AgentConfig
from repro.core.federated import CloudTrainer
from repro.core.frame_window import FrameWindowConfig
from repro.core.governor import NextGovernor
from repro.core.state import StateDiscretiserConfig
from repro.sim.experiment import train_next_governor

QUANTISATION_LEVELS = (10, 20, 30, 45, 60)
TRAINING_APP = "facebook"


def _agent_config(levels: int) -> AgentConfig:
    return AgentConfig(
        frame_window=FrameWindowConfig(quantisation_levels=levels),
        discretiser=StateDiscretiserConfig(fps_bins=levels, target_fps_bins=levels),
    )


def _train_at_level(levels: int, platform, bench_settings):
    governor = NextGovernor(config=_agent_config(levels), seed=7)
    result = train_next_governor(
        governor,
        TRAINING_APP,
        platform=platform,
        episodes=bench_settings.training_episodes,
        episode_duration_s=bench_settings.training_episode_s,
        seed=17,
        td_error_threshold=0.03,
    )
    return result


def test_fig6_training_time_online_vs_cloud(benchmark, platform, bench_settings):
    cloud = CloudTrainer()

    def sweep():
        return {levels: _train_at_level(levels, platform, bench_settings) for levels in QUANTISATION_LEVELS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for levels in QUANTISATION_LEVELS:
        result = results[levels]
        online_s = result.training_time_s
        cloud_s = cloud.cloud_time_s(online_s)
        rows.append(
            [
                levels,
                round(online_s, 1),
                round(cloud_s, 1),
                result.qtable_states,
                result.episodes,
                "yes" if result.converged else "no",
            ]
        )
    print()
    print(
        format_series_table(
            ["fps_levels", "online_train_s", "cloud_train_s", "qtable_states", "episodes", "converged"],
            rows,
            title="Fig. 6: training time vs frame-rate quantisation (online vs cloud)",
        )
    )

    online_times = [row[1] for row in rows]
    cloud_times = [row[2] for row in rows]
    states = [row[3] for row in rows]

    # The state space (and therefore the training effort) grows with the
    # quantisation resolution.
    assert states[-1] >= states[0]
    # Cloud training is faster than on-device training at every level, despite
    # the 4 s round-trip overhead -- the gap the paper's Fig. 6 shows.
    for online_s, cloud_s in zip(online_times, cloud_times):
        assert cloud_s < online_s
    # The coarsest configuration must not need more on-device time than the
    # finest one (the trend of the online series in Fig. 6).
    assert online_times[0] <= online_times[-1] * 1.25
