"""Perf-trajectory runner: executes the ``BENCH_*`` benchmarks and writes JSON.

The paper-figure benchmarks under ``benchmarks/bench_fig*.py`` regenerate the
paper's *results*; the benchmarks registered here track the *performance* of
the reproduction itself over time.  Each entry writes one ``BENCH_<name>.json``
report (committed at the repo root) containing before/after numbers, so the
perf trajectory of the codebase is versioned alongside the code.

Usage::

    python benchmarks/run_benchmarks.py                 # full profile, all benchmarks
    python benchmarks/run_benchmarks.py --fast          # CI smoke profile
    python benchmarks/run_benchmarks.py --only hotloop  # one benchmark
    python benchmarks/run_benchmarks.py --output-dir .  # where reports land
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # standalone execution without `pip install -e .`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_batch_hetero
import bench_batch_kernel
import bench_hot_loop
import bench_obs_overhead
import bench_shard_merge

#: name -> build_report(profile, repeat) callable producing the JSON payload.
BENCHMARKS = {
    "batch_hetero": bench_batch_hetero.build_report,
    "batch_kernel": bench_batch_kernel.build_report,
    "hotloop": bench_hot_loop.build_report,
    "obs_overhead": bench_obs_overhead.build_report,
    "shard_merge": bench_shard_merge.build_report,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true", help="CI smoke profile")
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--only",
        choices=sorted(BENCHMARKS),
        default=None,
        help="run a single benchmark instead of all",
    )
    parser.add_argument(
        "--output-dir", default=".", help="directory for the BENCH_*.json reports"
    )
    args = parser.parse_args(argv)

    profile = "fast" if args.fast else "full"
    names = [args.only] if args.only else sorted(BENCHMARKS)
    for name in names:
        print(f"== {name} ({profile}) ==")
        report = BENCHMARKS[name](profile=profile, repeat=args.repeat)
        path = os.path.join(args.output_dir, f"BENCH_{name}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(json.dumps(report, indent=2))
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
