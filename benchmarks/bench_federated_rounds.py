"""Federated fleet throughput: train-once, resume, and round scaling.

Not a paper figure: this benchmark measures the scaling substrate behind
Section IV-C's cloud-assisted training.  A federated sweep must (a) train
each distinct fleet exactly once however many cells evaluate it, (b) reuse
per-device round-0 artifacts across fleets that share a lineage, and
(c) deepen an existing fleet by running only the missing rounds.  The
benchmark times the three paths and asserts the resumed fleet is
bit-identical to one trained from scratch -- the property that makes
incremental fleet training trustworthy.
"""

import time
from dataclasses import replace

from repro.analysis.tables import format_series_table
from repro.core.federated import FleetSpec
from repro.experiments.artifacts import ArtifactStore
from repro.experiments.federated import FleetStore, train_fleet_artifact

BASE_SPEC = FleetSpec(
    apps=("facebook",),
    devices=3,
    rounds=2,
    episodes=1,
    episode_duration_s=15.0,
    fleet_seed=0,
)
DEEP_ROUNDS = 3


def test_fleet_resume_beats_retrain_from_scratch(benchmark, tmp_path):
    artifact_dir = str(tmp_path / "artifacts")
    store = FleetStore(artifact_dir)
    artifacts = ArtifactStore(artifact_dir)

    started = time.perf_counter()
    shallow, errors = store.ensure([BASE_SPEC], artifacts=artifacts)
    scratch_s = time.perf_counter() - started
    assert not errors

    deep_spec = replace(BASE_SPEC, rounds=DEEP_ROUNDS)

    def resume_deepening():
        fleets, deep_errors = store.ensure([deep_spec], artifacts=artifacts)
        assert not deep_errors
        return fleets[deep_spec.fingerprint()]

    started = time.perf_counter()
    resumed = benchmark.pedantic(resume_deepening, rounds=1, iterations=1)
    resume_s = time.perf_counter() - started
    assert store.resumed_count == 1

    started = time.perf_counter()
    from_scratch = train_fleet_artifact(deep_spec)
    deep_scratch_s = time.perf_counter() - started
    assert resumed.to_dict() == from_scratch.to_dict()

    started = time.perf_counter()
    served, errors = FleetStore(artifact_dir).ensure([deep_spec], artifacts=artifacts)
    warm_s = time.perf_counter() - started
    assert not errors
    assert served[deep_spec.fingerprint()].to_dict() == from_scratch.to_dict()

    print()
    print(
        format_series_table(
            ["path", "rounds", "seconds"],
            [
                [f"train {BASE_SPEC.rounds}-round fleet", BASE_SPEC.rounds, scratch_s],
                [f"resume to {DEEP_ROUNDS} rounds", DEEP_ROUNDS, resume_s],
                [f"train {DEEP_ROUNDS} rounds from scratch", DEEP_ROUNDS, deep_scratch_s],
                ["serve from store (warm)", DEEP_ROUNDS, warm_s],
            ],
            title=(
                f"Federated fleet ({BASE_SPEC.devices} devices, "
                f"{BASE_SPEC.episodes}x{BASE_SPEC.episode_duration_s:g}s episodes)"
            ),
        )
    )
    # Resuming runs one round instead of three; the warm path trains nothing.
    assert resume_s < deep_scratch_s
    assert warm_s < resume_s
