"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's figures (there are no numbered
tables in the paper; all results are figures).  The expensive artefacts --
recorded demand traces and trained Next agents -- are built once per pytest
session here and shared across benchmark modules.

Runtime is controlled by the ``REPRO_BENCH_PROFILE`` environment variable:

* ``fast`` (default): short sessions and training budgets, finishes in a few
  minutes on a laptop.
* ``full``: paper-length sessions (5 minutes for games) and longer training,
  closer to the evaluation protocol of Section V.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict

import pytest

from repro.core.governor import NextGovernor
from repro.sim.experiment import (
    make_governor,
    run_trace,
    select_best_next_governor,
)
from repro.sim.recorder import SummaryStatistics
from repro.soc.platform import exynos9810
from repro.workloads.apps import GAME_APPS, make_app
from repro.workloads.trace import TraceRecorder, WorkloadTrace

#: Applications evaluated in Figs. 7 and 8 of the paper.
PAPER_APPS = ("facebook", "lineage", "pubg", "spotify", "web_browser", "youtube")


@dataclass(frozen=True)
class BenchSettings:
    """Benchmark scale knobs derived from ``REPRO_BENCH_PROFILE``."""

    profile: str
    game_session_s: float
    app_session_s: float
    training_episodes: int
    training_episode_s: float
    candidate_seeds: tuple

    def session_duration(self, app_name: str) -> float:
        """Per-app evaluation session length (games run longer, as in the paper)."""
        return self.game_session_s if app_name in GAME_APPS else self.app_session_s


def _settings_from_env() -> BenchSettings:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "fast").lower()
    if profile == "full":
        return BenchSettings(
            profile="full",
            game_session_s=300.0,
            app_session_s=150.0,
            training_episodes=24,
            training_episode_s=90.0,
            candidate_seeds=(7, 23, 41),
        )
    return BenchSettings(
        profile="fast",
        game_session_s=120.0,
        app_session_s=90.0,
        training_episodes=12,
        training_episode_s=75.0,
        candidate_seeds=(7, 23),
    )


@pytest.fixture(scope="session")
def bench_settings() -> BenchSettings:
    return _settings_from_env()


@pytest.fixture(scope="session")
def platform():
    return exynos9810()


@pytest.fixture(scope="session")
def app_traces(platform, bench_settings) -> Dict[str, WorkloadTrace]:
    """One fixed demand trace per evaluated application (shared by all governors)."""
    dt_s = 1.0 / platform.display_refresh_hz
    traces = {}
    for index, app_name in enumerate(PAPER_APPS):
        traces[app_name] = TraceRecorder.record_app(
            make_app(app_name, seed=1000 + index),
            bench_settings.session_duration(app_name),
            dt_s,
        )
    return traces


@pytest.fixture(scope="session")
def trained_next_governors(platform, bench_settings) -> Dict[str, NextGovernor]:
    """A trained (exploitation-mode) Next governor per application."""
    governors = {}
    for app_name in PAPER_APPS:
        governors[app_name] = select_best_next_governor(
            [app_name],
            platform=platform,
            candidate_seeds=bench_settings.candidate_seeds,
            episodes=bench_settings.training_episodes,
            episode_duration_s=bench_settings.training_episode_s,
        )
    return governors


@pytest.fixture(scope="session")
def evaluation_matrix(
    platform, bench_settings, app_traces, trained_next_governors
) -> Dict[str, Dict[str, SummaryStatistics]]:
    """App x governor summary matrix used by the Fig. 7 and Fig. 8 benches.

    ``Int. QoS PM`` only appears for the two games, exactly as in the paper
    (the scheme targets 3D games and cannot be extended to the other apps).
    """
    matrix: Dict[str, Dict[str, SummaryStatistics]] = {}
    for app_name, trace in app_traces.items():
        row: Dict[str, SummaryStatistics] = {}
        row["schedutil"] = run_trace(
            trace, make_governor("schedutil"), platform=platform
        ).summary
        if app_name in GAME_APPS:
            row["int_qos_pm"] = run_trace(
                trace, make_governor("int_qos_pm"), platform=platform
            ).summary
        row["next"] = run_trace(
            trace, trained_next_governors[app_name], platform=platform
        ).summary
        matrix[app_name] = row
    return matrix
