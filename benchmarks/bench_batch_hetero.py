"""Heterogeneous-lane batch kernel benchmark: ``BENCH_batch_hetero.json``.

Measures what the *masked* heterogeneous-lane path of the batch kernel
(``repro.sim.batch``) costs and buys: device-ticks per wall-clock second
stepping N lanes whose session durations span a 50% spread (lane ``d``
replays between half and all of the paper's Fig. 1 session), versus the
scalar kernel replaying the identical trace, and versus the homogeneous
(unmasked) batch path as the overhead reference.

Mixed-duration fleets previously fell back to N scalar runs; the masked
kernel keeps them in one struct-of-arrays loop, zeroing finished lanes out
of each stage without perturbing live lanes' IEEE-754 op order (per-lane
bit-identity is pinned by ``tests/test_batch_kernel.py``), so this is a
pure throughput comparison of routes to the same output.

All sides are measured back to back in the *same process* (best of
``--repeat``): shared-runner wall clocks drift enough between runs that
ratios are only meaningful when numerator and denominator come from one
sitting.

Run standalone::

    python benchmarks/run_benchmarks.py --only batch_hetero
    python benchmarks/bench_batch_hetero.py --fast     # CI smoke
    python benchmarks/bench_batch_hetero.py --check-against BENCH_batch_hetero.json

``--check-against`` is the CI regression gate: it fails (exit 1) only if the
measured masked device-ticks/s regressed more than ``--max-regression``
(2x by default) versus the committed baseline -- generous on purpose so
shared CI runners do not flake the build.

Requires NumPy (the batch kernel is NumPy-backed); the CI bench-smoke job
installs it, the plain test job does not.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ in (None, ""):  # standalone execution without `pip install -e .`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.sim.config import SimulationConfig
from repro.sim.experiment import make_governor, record_session_trace, run_trace
from repro.soc.platform import exynos9810
from repro.workloads.session import FIGURE1_SESSION, SessionSegment
from repro.workloads.trace import TracePlayer

#: Fleet widths measured per profile.  N=256 is the width the batch kernel's
#: acceptance bar is stated at, so the masked path is gated there too.
DEVICE_COUNTS = {"full": (256,), "fast": (256,)}

#: Simulated seconds of the Fig. 1 session replayed per profile (full = the
#: whole 210 s session, matching the committed baseline's methodology).
FIG1_DURATION_S = {"full": None, "fast": 12.0}

#: The duration spread: lane d replays ``SPREAD + (1 - SPREAD) * d/(N-1)``
#: of the session, i.e. the shortest lane runs half as long as the longest.
SPREAD = 0.5


def _best_of(repeat, fn):
    best = None
    result = None
    for _ in range(repeat):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _lane_durations(n: int, total_s: float):
    """Per-lane session durations with a 50% spread, longest lane = full."""
    if n == 1:
        return [total_s]
    return [
        total_s * (SPREAD + (1.0 - SPREAD) * lane / (n - 1)) for lane in range(n)
    ]


def measure(profile: str = "full", repeat: int = 3) -> dict:
    """Measure scalar, homogeneous and masked throughput in one sitting."""
    from repro.sim.batch import BatchSimulation  # needs NumPy; import late

    platform = exynos9810()
    segments = FIGURE1_SESSION.segments
    limit = FIG1_DURATION_S[profile]
    if limit is not None:
        scale = limit / FIGURE1_SESSION.total_duration_s
        segments = tuple(
            SessionSegment(seg.app_name, max(1.0, seg.duration_s * scale))
            for seg in segments
        )
    trace = record_session_trace(segments, platform=platform, seed=2020)
    ticks = len(trace)

    scalar_wall, _ = _best_of(
        repeat, lambda: run_trace(trace, make_governor("schedutil"), platform=platform)
    )
    scalar_ticks_per_sec = ticks / scalar_wall

    results = {
        "fig1_ticks": ticks,
        "duration_spread": SPREAD,
        "scalar_ticks_per_sec": round(scalar_ticks_per_sec, 1),
        "scalar_us_per_tick": round(scalar_wall * 1e6 / ticks, 2),
        "uniform": {},
        "masked": {},
    }

    def make_batch(n: int):
        configs = [
            SimulationConfig(
                refresh_hz=platform.display_refresh_hz,
                duration_s=trace.duration_s,
                seed=index,
            )
            for index in range(n)
        ]
        governors = [make_governor("schedutil") for _ in range(n)]
        return BatchSimulation(platform, governors, configs)

    def run_uniform(n: int):
        batch = make_batch(n)
        batch.run([TracePlayer(trace) for _ in range(n)], duration_s=trace.duration_s)

    def run_masked(n: int):
        batch = make_batch(n)
        batch.run(
            [TracePlayer(trace) for _ in range(n)],
            duration_s=_lane_durations(n, trace.duration_s),
        )

    for n in DEVICE_COUNTS[profile]:
        # The masked run steps fewer device-ticks than n * ticks: each lane
        # only runs its own budget.  Throughput is per *stepped* device-tick.
        clock = make_batch(1).devices[0].clock
        masked_ticks = sum(
            clock.ticks_for(duration)
            for duration in _lane_durations(n, trace.duration_s)
        )
        uniform_wall, _ = _best_of(repeat, lambda: run_uniform(n))
        masked_wall, _ = _best_of(repeat, lambda: run_masked(n))
        uniform_rate = ticks * n / uniform_wall
        masked_rate = masked_ticks / masked_wall
        results["uniform"][str(n)] = {
            "device_ticks_per_sec": round(uniform_rate, 1),
            "us_per_device_tick": round(uniform_wall * 1e6 / (ticks * n), 3),
            "speedup_vs_scalar": round(uniform_rate / scalar_ticks_per_sec, 2),
        }
        results["masked"][str(n)] = {
            "device_ticks_stepped": masked_ticks,
            "device_ticks_per_sec": round(masked_rate, 1),
            "us_per_device_tick": round(masked_wall * 1e6 / masked_ticks, 3),
            "speedup_vs_scalar": round(masked_rate / scalar_ticks_per_sec, 2),
            "masking_overhead_vs_uniform": round(uniform_rate / masked_rate, 2),
        }
    return results


def build_report(profile: str, repeat: int) -> dict:
    """Measure and assemble the full BENCH_batch_hetero payload."""
    results = measure(profile=profile, repeat=repeat)
    return {
        "benchmark": "batch_hetero",
        "schema": 1,
        "profile": profile,
        "repeat": repeat,
        # "before" is the scalar kernel measured in the same process -- the
        # honest denominator under shared-runner wall-clock drift.
        "before": {
            "scalar_ticks_per_sec": results["scalar_ticks_per_sec"],
            "scalar_us_per_tick": results["scalar_us_per_tick"],
        },
        "after": results,
    }


def check_regression(report: dict, baseline: dict, max_regression: float) -> int:
    """Gate measured masked device-ticks/s against a committed baseline.

    Mirrors ``bench_batch_kernel``'s gate: only ever compares equal fleet
    widths (the widest measured by *both* reports), and both profiles
    measure N=256 precisely so the fast CI smoke gates against the
    committed full run.
    """
    shared = set(report["after"]["masked"]) & set(baseline["after"]["masked"])
    if not shared:
        counts = sorted(report["after"]["masked"], key=int)
        print(
            f"SKIP: no fleet width measured by both reports (measured "
            f"{counts}, committed {sorted(baseline['after']['masked'], key=int)})"
        )
        return 0
    width = max(shared, key=int)
    reference = baseline["after"]["masked"][width]["device_ticks_per_sec"]
    measured = report["after"]["masked"][width]["device_ticks_per_sec"]
    floor = reference / max_regression
    print(
        f"regression gate (N={width}): measured {measured:.0f} device-ticks/s "
        f"vs committed {reference:.0f} (floor {floor:.0f}, max regression "
        f"{max_regression}x)"
    )
    if measured < floor:
        print("FAIL: masked batch path regressed beyond the allowed factor")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke profile (short session, N=256)"
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output",
        default="BENCH_batch_hetero.json",
        help="where to write the report JSON",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="committed baseline JSON to gate against (CI regression check)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail only if device-ticks/sec dropped by more than this factor",
    )
    args = parser.parse_args(argv)

    # Load the baseline BEFORE writing anything: with the default --output the
    # gate may point at the very file we are about to overwrite.
    baseline = None
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    profile = "fast" if args.fast else "full"
    report = build_report(profile=profile, repeat=args.repeat)
    print(json.dumps(report, indent=2))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    if baseline is not None:
        return check_regression(report, baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
