"""Fig. 8 -- average peak temperature (big CPU and device) per application.

The paper reports the peak temperature of the big CPU cluster and of the
device for every application under schedutil, Next and (games only)
Int. QoS PM.  Headline numbers: Next reduces the big-CPU peak temperature by
up to 29.16 % and the device peak temperature by up to 21.21 % versus
schedutil, whereas Int. QoS PM manages at most 22.80 % and 3.51 %.

The benchmark prints the same two matrices and asserts the shape: Next runs
the big cluster cooler than schedutil on every app, and its best-case
reduction is substantial.
"""

from repro.analysis.compare import percentage_saving
from repro.analysis.tables import format_comparison_table, format_series_table

#: Applications evaluated in Fig. 8 (kept in sync with benchmarks/conftest.py).
PAPER_APPS = ("facebook", "lineage", "pubg", "spotify", "web_browser", "youtube")

#: Maximum reductions reported by the paper (vs schedutil, absolute Celsius %).
PAPER_MAX_BIG_REDUCTION_PCT = 29.16
PAPER_MAX_DEVICE_REDUCTION_PCT = 21.21


def test_fig8_peak_temperature_comparison(benchmark, evaluation_matrix, platform):
    def build_tables():
        big = {
            app: {name: summary.peak_temperature_c["big"] for name, summary in row.items()}
            for app, row in evaluation_matrix.items()
        }
        device = {
            app: {name: summary.peak_temperature_c["device"] for name, summary in row.items()}
            for app, row in evaluation_matrix.items()
        }
        return big, device

    big_matrix, device_matrix = benchmark.pedantic(build_tables, rounds=1, iterations=1)

    print()
    print(
        format_comparison_table(
            big_matrix,
            governor_order=["schedutil", "next", "int_qos_pm"],
            value_label="peak big-CPU temperature (C)",
            title="Fig. 8a: peak big-cluster temperature",
        )
    )
    print()
    print(
        format_comparison_table(
            device_matrix,
            governor_order=["schedutil", "next", "int_qos_pm"],
            value_label="peak device temperature (C)",
            title="Fig. 8b: peak device temperature",
        )
    )

    rows = []
    big_reductions = []
    device_reductions = []
    for app in PAPER_APPS:
        big_reduction = percentage_saving(
            big_matrix[app]["schedutil"], big_matrix[app]["next"]
        )
        device_reduction = percentage_saving(
            device_matrix[app]["schedutil"], device_matrix[app]["next"]
        )
        big_reductions.append(big_reduction)
        device_reductions.append(device_reduction)
        rows.append([app, round(big_reduction, 1), round(device_reduction, 1)])
    print(
        format_series_table(
            ["app", "next_big_reduction_%", "next_device_reduction_%"],
            rows,
            title=(
                "Fig. 8 derived: Next peak-temperature reduction vs schedutil "
                f"(paper maxima: big {PAPER_MAX_BIG_REDUCTION_PCT}%, "
                f"device {PAPER_MAX_DEVICE_REDUCTION_PCT}%)"
            ),
        )
    )

    # Shape assertions: Next never runs the big cluster hotter than schedutil,
    # and its best-case reduction is substantial (double digits).
    for app in PAPER_APPS:
        assert big_matrix[app]["next"] <= big_matrix[app]["schedutil"] + 0.5
        assert device_matrix[app]["next"] <= device_matrix[app]["schedutil"] + 0.5
    assert max(big_reductions) > 10.0
    assert max(device_reductions) > 1.0
    # Device (body) temperature moves much less than the silicon sensor, as in
    # the paper where device reductions are smaller than big-CPU reductions.
    assert max(device_reductions) <= max(big_reductions) + 1.0
