"""Observability overhead benchmark: the numbers behind ``BENCH_obs_overhead.json``.

PR 10's non-negotiable invariant is that observability never perturbs
results; this benchmark pins the companion promise that it barely costs
anything either.  On the paper's Fig. 1 mixed session (home -> facebook
-> spotify under ``schedutil``), it measures:

* ``fig1_ticks_per_sec_disabled`` -- the hot loop with every obs feature
  off: the baseline everything else is compared against,
* ``fig1_ticks_per_sec_traced`` -- the same replay with tracing active
  (``REPRO_TRACE`` exported, each replay under a span, the metrics
  footer flushed), which must stay within 3% of the baseline because the
  tick loop itself carries zero tracing hooks,
* ``fig1_ticks_per_sec_profiled`` -- the opt-in sampling profiler at its
  default stride, reported for information (profiling is a diagnostic
  mode, not a default), and
* ``disabled_seam_allocs`` -- ``sys.getallocatedblocks()`` delta across
  10,000 calls of the disabled-path seams the hot loop actually touches
  (``active_profiler()`` / ``active_tracer()``): the "compiled out to a
  no-op" contract, pinned at exactly zero allocations.

Run standalone::

    python benchmarks/bench_obs_overhead.py            # full profile
    python benchmarks/bench_obs_overhead.py --fast     # CI smoke
    python benchmarks/bench_obs_overhead.py --check-against BENCH_obs_overhead.json

``--check-against`` gates the disabled-mode throughput against the
committed baseline with the same deliberately generous ``--max-regression``
factor the other benchmarks use; the allocation pin is exact and gates
unconditionally.  ``--max-overhead-pct`` optionally turns the measured
traced-mode overhead into a hard gate (the committed full-profile report
was produced with ``--max-overhead-pct 3``; the fast CI profile replays
too little sim-time for a single-digit-percent gate to be meaningful on
shared runners).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time

if __package__ in (None, ""):  # standalone execution without `pip install -e .`
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.obs.metrics import reset_metrics
from repro.obs.profile import active_profiler, deactivate_profiling, profiled
from repro.obs.trace import active_tracer, deactivate_tracing, maybe_span, traced
from repro.sim.experiment import make_governor, record_session_trace, run_trace
from repro.soc.platform import exynos9810
from repro.workloads.session import FIGURE1_SESSION, SessionSegment

#: Simulated seconds of the Fig. 1 session replayed per profile (the full
#: session is 210 s; the fast profile keeps CI under a few wall-seconds).
FIG1_DURATION_S = {"full": None, "fast": 12.0}

#: Default sampling stride for the informational profiled measurement.
PROFILE_STRIDE = 32

#: Calls of the disabled seams the allocation probe drives.
ALLOC_PROBE_CALLS = 10_000

#: Constant measurement noise the probe tolerates: the ``before`` counter
#: sample is itself a live PyLong while the ``after`` sample is taken, so
#: a handful of blocks can appear even when the probed seams allocate
#: nothing.  The contract is *zero allocations per call*; a constant
#: O(blocks) residual over 10,000 calls is the probe's own bookkeeping.
ALLOC_TOLERANCE_BLOCKS = 4


def _best_of_interleaved(repeat, fns):
    """Best wall time per mode, measuring the modes round-robin.

    Sequential blocks (all disabled runs, then all traced runs, ...) fold
    CPU-frequency drift -- turbo decay, thermal throttling -- into the
    *difference* between modes, which is exactly the quantity this
    benchmark reports.  Interleaving runs every mode under the same drift,
    so the per-mode minima stay comparable.
    """
    best = [None] * len(fns)
    for _ in range(repeat):
        for index, fn in enumerate(fns):
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            if best[index] is None or elapsed < best[index]:
                best[index] = elapsed
    return best


def _fig1_trace(profile: str):
    segments = FIGURE1_SESSION.segments
    limit = FIG1_DURATION_S[profile]
    if limit is not None:
        scale = limit / FIGURE1_SESSION.total_duration_s
        segments = tuple(
            SessionSegment(seg.app_name, max(1.0, seg.duration_s * scale))
            for seg in segments
        )
    return record_session_trace(segments, platform=exynos9810(), seed=2020)


def _disabled_seam_allocs() -> int:
    """Allocation-count pin of the hot loop's disabled-path obs reads.

    The tick loop's only per-call obs cost when everything is off is one
    ``active_profiler()`` read (and, at cell granularity, one
    ``active_tracer()`` env resolution).  Both must allocate nothing.
    The probe takes the best of several passes: other runtime machinery
    (GC, interned caches) can allocate concurrently, but the seams
    themselves never do, so the minimum delta is the honest number.
    """
    deactivate_tracing()
    deactivate_profiling()
    gc.collect()
    # One full warm-up pass: the very first loop pays one-off interpreter
    # costs (adaptive specialization, cache fills) that show up as a few
    # blocks and never recur.
    for _ in range(ALLOC_PROBE_CALLS):
        active_profiler()
        active_tracer()
    best = None
    for _ in range(5):
        before = sys.getallocatedblocks()
        for _ in range(ALLOC_PROBE_CALLS):
            active_profiler()
            active_tracer()
        delta = sys.getallocatedblocks() - before
        if best is None or delta < best:
            best = delta
    return max(0, best)


def measure(profile: str = "full", repeat: int = 3) -> dict:
    platform = exynos9810()
    trace = _fig1_trace(profile)

    def replay():
        return run_trace(trace, make_governor("schedutil"), platform=platform)

    def disabled_replay():
        # Every obs feature off: the baseline.
        deactivate_tracing()
        deactivate_profiling()
        return replay()

    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")

        def traced_replay():
            # Tracing active, the replay under a span -- like a sweep cell.
            deactivate_profiling()
            with traced(trace_path):
                with maybe_span("cell", fingerprint="bench-fig1"):
                    return replay()

        def profiled_replay():
            # Sampling profiler on (informational; opt-in diagnostic mode).
            deactivate_tracing()
            with profiled(stride=PROFILE_STRIDE):
                return replay()

        reset_metrics()
        replay()  # warm-up: the first replay pays one-off interpreter costs
        disabled_wall, traced_wall, profiled_wall = _best_of_interleaved(
            repeat, [disabled_replay, traced_replay, profiled_replay]
        )
    reset_metrics()

    allocs = _disabled_seam_allocs()

    ticks = len(trace)
    traced_overhead = 100.0 * (traced_wall - disabled_wall) / disabled_wall
    profiled_overhead = 100.0 * (profiled_wall - disabled_wall) / disabled_wall
    return {
        "fig1_ticks": ticks,
        "fig1_ticks_per_sec_disabled": round(ticks / disabled_wall, 1),
        "fig1_ticks_per_sec_traced": round(ticks / traced_wall, 1),
        "fig1_ticks_per_sec_profiled": round(ticks / profiled_wall, 1),
        "traced_overhead_pct": round(traced_overhead, 2),
        "profiled_overhead_pct": round(profiled_overhead, 2),
        "profile_stride": PROFILE_STRIDE,
        "disabled_seam_allocs": allocs,
        "alloc_probe_calls": ALLOC_PROBE_CALLS,
    }


def build_report(profile: str, repeat: int) -> dict:
    """Measure and assemble the full BENCH_obs_overhead payload."""
    return {
        "benchmark": "obs_overhead",
        "schema": 1,
        "profile": profile,
        "repeat": repeat,
        "after": measure(profile=profile, repeat=repeat),
    }


def check_regression(report: dict, baseline: dict, max_regression: float) -> int:
    """Gate disabled-mode throughput against the committed baseline."""
    reference = baseline["after"]["fig1_ticks_per_sec_disabled"]
    measured = report["after"]["fig1_ticks_per_sec_disabled"]
    floor = reference / max_regression
    print(
        f"regression gate: measured {measured:.0f} ticks/s vs committed "
        f"{reference:.0f} ticks/s (floor {floor:.0f}, max regression {max_regression}x)"
    )
    if measured < floor:
        print("FAIL: disabled-mode hot loop regressed beyond the allowed factor")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke profile (<= 12 simulated seconds)"
    )
    parser.add_argument("--repeat", type=int, default=3, help="best-of repetitions")
    parser.add_argument(
        "--output",
        default="BENCH_obs_overhead.json",
        help="where to write the report JSON",
    )
    parser.add_argument(
        "--check-against",
        default=None,
        help="committed baseline JSON to gate against (CI regression check)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail only if disabled ticks/sec dropped by more than this factor",
    )
    parser.add_argument(
        "--max-overhead-pct",
        type=float,
        default=None,
        help="fail if traced-mode overhead exceeds this percentage "
        "(used for the committed full-profile report; too noisy for CI smoke)",
    )
    args = parser.parse_args(argv)

    # Load the baseline BEFORE writing anything: with the default --output the
    # gate may point at the very file we are about to overwrite.
    baseline = None
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    profile = "fast" if args.fast else "full"
    report = build_report(profile=profile, repeat=args.repeat)
    print(json.dumps(report, indent=2))
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    # The allocation pin is machine-independent: gate it always.  Anything
    # beyond the probe's constant bookkeeping residual means a disabled-path
    # seam started allocating per call.
    allocs = report["after"]["disabled_seam_allocs"]
    if allocs > ALLOC_TOLERANCE_BLOCKS:
        print(
            f"FAIL: disabled-path obs seams allocated {allocs} blocks over "
            f"{ALLOC_PROBE_CALLS} calls (contract: 0 per call, "
            f"<= {ALLOC_TOLERANCE_BLOCKS} constant residual)"
        )
        return 1
    if args.max_overhead_pct is not None:
        overhead = report["after"]["traced_overhead_pct"]
        print(
            f"overhead gate: traced {overhead:+.2f}% vs allowed "
            f"{args.max_overhead_pct:.2f}%"
        )
        if overhead > args.max_overhead_pct:
            print("FAIL: traced-mode overhead exceeds the allowed percentage")
            return 1
    if baseline is not None:
        return check_regression(report, baseline, args.max_regression)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
