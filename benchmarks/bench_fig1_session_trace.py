"""Fig. 1 -- FPS and big/LITTLE frequency trace of a mixed session (schedutil).

The paper's motivating figure records the frame rate every 3 seconds together
with the big and LITTLE cluster frequencies while a user moves through the
home screen, Facebook and Spotify under the stock ``schedutil`` governor.
The benchmark regenerates the same series from the simulator and asserts the
figure's qualitative message: the frame rate is bursty and frequently near
zero while the big-cluster frequency stays high.
"""

import pytest

from repro.analysis.tables import format_series_table
from repro.sim.experiment import make_governor, record_session_trace, run_trace
from repro.workloads.session import FIGURE1_SESSION


@pytest.fixture(scope="module")
def fig1_trace(platform):
    return record_session_trace(FIGURE1_SESSION.segments, platform=platform, seed=2020)


def test_fig1_session_trace(benchmark, platform, fig1_trace):
    result = benchmark.pedantic(
        lambda: run_trace(fig1_trace, make_governor("schedutil"), platform=platform),
        rounds=1,
        iterations=1,
    )
    recorder = result.recorder

    # Reproduce the figure's series: one row every 3 seconds.
    rows = []
    for sample in recorder.resample(3.0):
        rows.append(
            [
                round(sample.time_s),
                sample.app_name,
                round(sample.fps, 1),
                round(sample.frequencies_mhz["big"] / 1000.0, 3),
                round(sample.frequencies_mhz["little"] / 1000.0, 3),
            ]
        )
    print()
    print(
        format_series_table(
            ["time_s", "app", "fps", "freq_big_ghz", "freq_little_ghz"],
            rows,
            title="Fig. 1: schedutil FPS and CPU frequencies (home -> facebook -> spotify)",
        )
    )

    fps_series = [row[2] for row in rows]
    big_freq_series = [row[3] for row in rows]

    # Qualitative assertions matching the figure: the frame rate varies widely
    # within the session and drops to near zero, yet the big cluster spends a
    # substantial share of the session in the upper half of its range.
    assert max(fps_series) > 25.0
    assert min(fps_series) < 5.0
    high_freq_share = sum(1 for f in big_freq_series if f > 0.5 * 2.704) / len(big_freq_series)
    assert high_freq_share > 0.4
