"""Artifact pipeline throughput: train-once versus retrain-per-cell.

Not a paper figure: this benchmark measures the scaling substrate behind the
paper's evaluation protocol.  Section IV-B trains each application once and
stores its Q-table; a sweep replicating a trained-``next`` condition over
many seeds must therefore train once per distinct spec, not once per cell.
The benchmark runs the same 1-workload x N-seed pretrained matrix twice:

* *retrain-per-cell*: every pretrained cell trains its own agent inline
  (what standalone ``execute_cell`` does without an artifact), and
* *train-once*: through a ``SweepRunner`` with an artifact store, so one
  training serves all N replication seeds,

asserts both paths produce identical per-cell summaries, and reports the
timing plus a third, fully warm pass in which the store serves the artifact
from disk and zero training happens.
"""

import time

from repro.analysis.tables import format_series_table
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import SweepRunner, execute_cell

SEEDS = (0, 1, 2)


def _bench_matrix() -> ScenarioMatrix:
    return ScenarioMatrix.build(
        name="bench-artifact",
        governors=("next",),
        apps=("facebook",),
        seeds=SEEDS,
        duration_s=10.0,
        training={
            "key": "pretrained",
            "mode": "pretrained",
            "episodes": 2,
            "episode_duration_s": 15.0,
        },
    )


def test_train_once_beats_retrain_per_cell(benchmark, tmp_path):
    matrix = _bench_matrix()
    cells = matrix.cells()
    assert all(cell.pretrained for cell in cells)

    started = time.perf_counter()
    retrained = [execute_cell(cell) for cell in cells]
    retrain_s = time.perf_counter() - started
    assert all(result.ok for result in retrained)

    artifact_dir = str(tmp_path / "artifacts")

    def train_once_sweep():
        return SweepRunner(max_workers=1, artifact_dir=artifact_dir).run(matrix)

    started = time.perf_counter()
    shared = benchmark.pedantic(train_once_sweep, rounds=1, iterations=1)
    train_once_s = time.perf_counter() - started
    assert all(result.ok for result in shared.results)

    # Train-once is an optimisation, never a semantic change.
    assert [r.summary for r in shared.results] == [r.summary for r in retrained]

    warm_runner = SweepRunner(max_workers=1, artifact_dir=artifact_dir)
    started = time.perf_counter()
    warm = warm_runner.run(matrix)
    warm_s = time.perf_counter() - started
    assert warm_runner.artifacts.trained_count == 0  # served from the store
    assert [r.summary for r in warm.results] == [r.summary for r in retrained]

    print()
    print(
        format_series_table(
            ["path", "trainings", "cells", "elapsed_s"],
            [
                ["retrain-per-cell", len(cells), len(cells), retrain_s],
                ["train-once (cold store)", 1, len(cells), train_once_s],
                ["train-once (warm store)", 0, len(cells), warm_s],
            ],
            title=f"Trained-next artifact pipeline over {len(SEEDS)} seeds",
        )
    )
