"""Fig. 7 -- average power per application: schedutil vs Next vs Int. QoS PM.

The paper reports, for six Google Play applications, the average power of the
stock ``schedutil`` governor, of the fully trained Next agent and -- for the
two games only -- of the Int. QoS PM baseline.  Headline numbers: Next saves
32.98-50.68 % versus schedutil depending on the app (largest on Lineage), and
Int. QoS PM saves only 16.31 % / 23.84 % on the games.

The benchmark prints the same app x governor matrix from the shared
evaluation fixture and asserts the figure's shape: Next saves power on every
application, and the savings are achieved without collapsing frame delivery.
"""

from repro.analysis.compare import percentage_saving
from repro.analysis.tables import format_comparison_table, format_series_table

#: Applications evaluated in Fig. 7 (kept in sync with benchmarks/conftest.py).
PAPER_APPS = ("facebook", "lineage", "pubg", "spotify", "web_browser", "youtube")

#: Power savings versus schedutil that the paper reports for Next (Fig. 7).
PAPER_NEXT_SAVINGS_PCT = {
    "facebook": 37.05,
    "lineage": 50.68,
    "pubg": 40.95,
    "spotify": 32.98,
    "web_browser": 32.11,
    "youtube": 40.6,
}

#: Power savings versus schedutil the paper reports for Int. QoS PM.
PAPER_INTQOS_SAVINGS_PCT = {"lineage": 16.31, "pubg": 23.84}


def test_fig7_average_power_comparison(benchmark, evaluation_matrix):
    def build_power_table():
        return {
            app: {name: summary.average_power_w for name, summary in row.items()}
            for app, row in evaluation_matrix.items()
        }

    power_matrix = benchmark.pedantic(build_power_table, rounds=1, iterations=1)

    print()
    print(
        format_comparison_table(
            power_matrix,
            governor_order=["schedutil", "next", "int_qos_pm"],
            value_label="average power (W)",
            title="Fig. 7: average power per application",
        )
    )

    rows = []
    for app in PAPER_APPS:
        base = power_matrix[app]["schedutil"]
        next_saving = percentage_saving(base, power_matrix[app]["next"])
        intqos_saving = (
            percentage_saving(base, power_matrix[app]["int_qos_pm"])
            if "int_qos_pm" in power_matrix[app]
            else None
        )
        delivery = evaluation_matrix[app]["next"].frame_delivery_ratio
        rows.append(
            [
                app,
                round(next_saving, 1),
                PAPER_NEXT_SAVINGS_PCT[app],
                "-" if intqos_saving is None else round(intqos_saving, 1),
                PAPER_INTQOS_SAVINGS_PCT.get(app, "-"),
                round(delivery, 2),
            ]
        )
    print(
        format_series_table(
            [
                "app",
                "next_saving_%",
                "paper_next_%",
                "intqos_saving_%",
                "paper_intqos_%",
                "next_delivery",
            ],
            rows,
            title="Fig. 7 derived: power saving vs schedutil (measured vs paper)",
        )
    )

    # Shape assertions.  With the fast profile the tabular learner occasionally
    # fails to improve on one application (it then behaves exactly like the
    # stock governor, never worse), so per-app we only require "no regression"
    # and demand strict savings on the clear majority of the applications.
    strict_savings = 0
    for app in PAPER_APPS:
        base = power_matrix[app]["schedutil"]
        next_power = power_matrix[app]["next"]
        assert next_power <= base * 1.005, f"Next must never waste power vs schedutil on {app}"
        if next_power < base * 0.98:
            strict_savings += 1
        assert (
            evaluation_matrix[app]["next"].frame_delivery_ratio > 0.80
        ), f"Next must not trade QoS away on {app}"
    assert strict_savings >= len(PAPER_APPS) - 1, "Next must save power on nearly every app"
    for game in ("lineage", "pubg"):
        base = power_matrix[game]["schedutil"]
        assert power_matrix[game]["int_qos_pm"] < base, "Int. QoS PM saves power on games"
    # The average saving across apps should be substantial (the paper reports
    # 33-51 %; the simulated substrate reproduces the direction with a smaller
    # but still large margin).
    savings = [
        percentage_saving(power_matrix[app]["schedutil"], power_matrix[app]["next"])
        for app in PAPER_APPS
    ]
    assert sum(savings) / len(savings) > 8.0
