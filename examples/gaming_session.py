"""Gaming scenario: train Next on PubG Mobile and compare three governors.

Reproduces the paper's gaming evaluation at example scale: the Next agent is
trained on the PubG workload, then a fixed 2-minute match is replayed under
stock ``schedutil``, the Int. QoS PM baseline (Pathania et al., DAC 2014) and
the trained Next agent.

Run with::

    python examples/gaming_session.py
"""

from repro import make_governor
from repro.analysis.compare import percentage_saving
from repro.sim.experiment import run_trace, select_best_next_governor
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder

GAME = "pubg"


def main() -> None:
    platform = exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz

    print(f"Training the Next agent on {GAME!r} (a few simulated sessions)...")
    next_governor = select_best_next_governor(
        [GAME],
        platform=platform,
        candidate_seeds=(7, 23),
        episodes=12,
        episode_duration_s=75.0,
    )
    print("Training done.\n")

    trace = TraceRecorder.record_app(make_app(GAME, seed=2024), 120.0, dt_s)

    governors = {
        "schedutil": make_governor("schedutil"),
        "int_qos_pm": make_governor("int_qos_pm"),
        "next": next_governor,
    }
    summaries = {
        name: run_trace(trace, governor, platform=platform).summary
        for name, governor in governors.items()
    }

    baseline = summaries["schedutil"]
    header = f"{'governor':<12} {'power (W)':>10} {'saving %':>9} {'peak big C':>11} {'fps':>6} {'delivery':>9}"
    print(header)
    print("-" * len(header))
    for name, summary in summaries.items():
        saving = percentage_saving(baseline.average_power_w, summary.average_power_w)
        print(
            f"{name:<12} {summary.average_power_w:>10.2f} {saving:>9.1f} "
            f"{summary.peak_temperature_c['big']:>11.1f} {summary.average_fps:>6.1f} "
            f"{summary.frame_delivery_ratio:>9.2f}"
        )

    print(
        "\nThe paper's Fig. 7/8 shape: Next saves a large fraction of the gaming power\n"
        "and runs the big cluster much cooler than stock schedutil, while the averaged-\n"
        "FPS baseline (Int. QoS PM) either saves less or sacrifices frame delivery."
    )


if __name__ == "__main__":
    main()
