"""Explore the PPDW metric (Section III-B) on the simulated platform.

Computes the PPDW bounds of the simulated Exynos 9810 (Eq. 2), then sweeps
operating points for the Lineage game and prints where each lands inside the
achievable range -- a numerical companion to Fig. 4 of the paper.

Run with::

    python examples/ppdw_exploration.py
"""

from repro.core.ppdw import PpdwBounds, compute_ppdw
from repro.governors.base import Governor
from repro.sim.experiment import run_trace
from repro.soc.platform import exynos9810
from repro.soc.power import SocPowerModel
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder


class FixedCapGovernor(Governor):
    """Caps every cluster at a fixed fraction of its OPP table."""

    invocation_period_s = 1.0

    def __init__(self, fraction: float) -> None:
        super().__init__(name=f"cap_{fraction:.2f}")
        self.fraction = fraction

    def update(self, observation, clusters) -> None:
        for cluster in clusters.values():
            top = len(cluster.opp_table) - 1
            cluster.set_max_limit_index(round(self.fraction * top))


def main() -> None:
    platform = exynos9810()
    power_model = SocPowerModel(platform.cluster_specs, platform.rest_of_platform_power_w)

    bounds = PpdwBounds.from_platform_limits(
        fps_max=60.0,
        fps_least=1.0,
        power_max_w=power_model.peak_power_w(),
        power_least_w=power_model.min_active_power_w(),
        temperature_max_c=platform.max_chip_temperature_c,
        temperature_least_c=platform.ambient_c + 3.0,
        ambient_c=platform.ambient_c,
    )
    print(f"PPDW_worst = {bounds.worst:.4f}   (1 FPS at max power and max temperature)")
    print(f"PPDW_best  = {bounds.best:.4f}   (60 FPS at min power, barely above ambient)\n")

    dt_s = 1.0 / platform.display_refresh_hz
    trace = TraceRecorder.record_app(make_app("lineage", seed=4), 90.0, dt_s)

    print(f"{'cap':>5} {'fps':>6} {'power W':>8} {'big C':>7} {'PPDW':>8} {'normalised':>11}")
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        summary = run_trace(trace, FixedCapGovernor(fraction), platform=platform).summary
        ppdw = compute_ppdw(
            summary.average_fps,
            summary.average_power_w,
            summary.peak_temperature_c["big"],
            platform.ambient_c,
        )
        print(
            f"{fraction:>5.2f} {summary.average_fps:>6.1f} {summary.average_power_w:>8.2f} "
            f"{summary.peak_temperature_c['big']:>7.1f} {ppdw:>8.4f} {bounds.normalise(ppdw):>11.3f}"
        )

    print(
        "\nEvery measured point lies inside the platform's achievable PPDW range;\n"
        "the Next agent's reward (Eq. 4) pushes the operating point towards the\n"
        "high-PPDW region that still satisfies the frame-window target."
    )


if __name__ == "__main__":
    main()
