"""Federated device-fleet sweep: cold vs pretrained vs fleet-merged Next.

Section IV-C of the paper envisions a cloud back-end where many devices of
the same model pool their training experience.  This example runs the
``federated`` named matrix -- the training axis carries ``cold``,
``pretrained`` (one device's budget) and ``federated`` (a device fleet
merged per round) variants of the Next governor next to schedutil -- and
prints the comparison tables plus the fleet's round-by-round convergence.

Equivalent CLI invocation::

    repro-sweep federated --devices 3 --rounds 2 --max-workers 4

Run with::

    python examples/federated_fleet_sweep.py
"""

from dataclasses import replace

from repro.experiments.aggregate import condition_table, marginal_table
from repro.experiments.federated import fleet_convergence_table
from repro.experiments.matrix import named_matrix
from repro.experiments.runner import SweepRunner

DEVICES = 3
ROUNDS = 2


def main() -> None:
    matrix = named_matrix("federated")
    matrix = replace(
        matrix,
        training=tuple(
            replace(variant, devices=DEVICES, rounds=ROUNDS)
            if variant.federated
            else variant
            for variant in matrix.training
        ),
    )
    print(f"Sweep '{matrix.name}': {len(matrix)} cells, "
          f"fleet of {DEVICES} devices x {ROUNDS} rounds")

    runner = SweepRunner(max_workers=4)
    sweep = runner.run(
        matrix,
        progress=lambda done, total, result: print(
            f"  [{done}/{total}] {result.status} {result.cell.label()}"
        ),
    )

    print()
    print(condition_table(sweep, metric="average_power_w"))
    print()
    print(marginal_table(sweep, axis="training", metric="average_power_w"))

    for cell in matrix.cells():
        fleet = cell.fleet_spec()
        if fleet is None:
            continue
        artifact = runner.fleets.load(fleet)
        if artifact is not None:
            print()
            print(fleet_convergence_table(artifact))
        break

    print(f"\nfleets trained: {runner.fleets.trained_count}, "
          f"device artifacts trained: {runner.artifacts.trained_count}")


if __name__ == "__main__":
    main()
