"""Trained-Next sweep: the paper's evaluation protocol at matrix scale.

Section V evaluates Next only "when it was fully trained on the respective
applications".  This example builds a cold-vs-pretrained design -- schedutil
as the baseline, ``next`` both untrained (exploring) and pre-trained via the
artifact pipeline -- so the printed table shows exactly what the training
axis buys: the pretrained rows evaluate a frozen greedy policy whose agent
was trained once per workload and cached under
``.sweep-cache/artifacts/<fingerprint>.agent.json``.

Run it twice: the second run trains zero times (artifacts and cell results
are both served from the cache).

Run with::

    python examples/trained_next_sweep.py
"""

from repro.experiments import (
    ScenarioMatrix,
    SweepRunner,
    condition_table,
    marginal_table,
)


def main() -> None:
    matrix = ScenarioMatrix.build(
        name="trained-example",
        governors=("schedutil", "next"),
        apps=("facebook", "spotify"),
        seeds=(0, 1),
        duration_s=30.0,
        training=(
            {"key": "cold", "mode": "cold"},
            {
                "key": "pretrained",
                "mode": "pretrained",
                "episodes": 4,
                "episode_duration_s": 45.0,
                "seed": 0,
            },
        ),
    )
    print(
        f"Running {len(matrix)} cells "
        "(schedutil once per row; next cold and pretrained)...\n"
    )

    runner = SweepRunner(max_workers=4, cache_dir=".sweep-cache")
    sweep = runner.run(
        matrix,
        progress=lambda done, total, result: print(
            f"  [{done:2d}/{total}] {result.status} {result.cell.label()}"
            + (" (cached)" if result.from_cache else "")
        ),
    )

    print()
    print(condition_table(sweep, metric="average_power_w"))
    print()
    print(marginal_table(sweep, axis="training", baseline="schedutil"))
    print(
        f"\n{len(sweep.completed)}/{len(sweep)} cells ok, "
        f"{sweep.cached_count} from cache; artifacts: "
        f"{runner.artifacts.trained_count} trained, "
        f"{runner.artifacts.reused_count} reused"
    )


if __name__ == "__main__":
    main()
