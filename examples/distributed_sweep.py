"""Distributed sweep walkthrough: plan -> run shards -> merge, in-process.

Demonstrates the `repro.experiments.distributed` round trip the CLI exposes
as ``repro-sweep shard plan|run|merge|status``: a matrix with trained-Next
cells is planned into three shards (the training spec lands on exactly one
of them), every shard runs into its own directory -- in real deployments
each directory lives on a different machine -- and the merge reconstructs
the aggregate sweep bit-identically to a single-machine run.

Run with::

    PYTHONPATH=src python examples/distributed_sweep.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.experiments.aggregate import condition_table
from repro.experiments.distributed import (
    merge_shards,
    plan_shards,
    run_shard,
    shard_directory,
    shard_status,
)
from repro.experiments.matrix import ScenarioMatrix
from repro.experiments.runner import SweepRunner


def main() -> None:
    matrix = ScenarioMatrix.build(
        name="distributed-demo",
        governors=("schedutil", "next"),
        apps=("facebook", "spotify"),
        seeds=(0,),
        duration_s=6.0,
        training={
            "mode": "pretrained",
            "apps": ["facebook", "spotify"],
            "episodes": 1,
            "episode_duration_s": 6.0,
        },
    )

    manifest = plan_shards(matrix, shards=3)
    print(f"planned {manifest.shard_count} shards for {len(matrix)} cells:")
    for index, shard in enumerate(manifest.assignments):
        print(f"  shard {index}: {len(shard)} cells, "
              f"~{manifest.shard_cost_s(index):.2f}s estimated")

    with tempfile.TemporaryDirectory() as base:
        # On a real deployment each of these runs on its own machine against
        # a copy of shard-manifest.json; the directories are shipped back
        # before merging.
        for index in range(manifest.shard_count):
            run_shard(manifest, index, shard_directory(base, index))
            status = shard_status(manifest, index, shard_directory(base, index))
            print(f"shard {index}: {status.state}, "
                  f"{status.completed}/{status.total} cells")

        merged, counters = merge_shards(
            manifest,
            [shard_directory(base, index) for index in range(manifest.shard_count)],
            os.path.join(base, "merged"),
        )
        print(f"\nmerged {counters['results']} results, "
              f"{counters['artifacts']} artifacts")
        print(condition_table(merged, metric="average_power_w"))

        # The distributed guarantee: per-cell bit-identity with one machine.
        reference = SweepRunner(max_workers=1).run(matrix)
        for cell in matrix.cells():
            assert (
                merged.result_for(cell).summary["sample_stream_hash"]
                == reference.result_for(cell).summary["sample_stream_hash"]
            )
        print(f"\nbit-identical to the unsharded run across {len(matrix)} cells")


if __name__ == "__main__":
    main()
