"""Quickstart: simulate a phone session and compare two governors.

Runs the Facebook workload on the simulated Exynos 9810 under the stock
``schedutil`` governor and under the ``powersave`` governor, and prints the
power / thermal / QoS summary of both -- a two-minute tour of the public API.

Run with::

    python examples/quickstart.py
"""

from repro import make_governor
from repro.sim.experiment import run_trace
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder


def main() -> None:
    platform = exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz

    # Record the demand of one 60 s Facebook session once, so both governors
    # face exactly the same user behaviour.
    app = make_app("facebook", seed=42)
    trace = TraceRecorder.record_app(app, duration_s=60.0, dt_s=dt_s)
    print(f"Recorded {len(trace)} ticks, {trace.total_frames_demanded} frames demanded.\n")

    for governor_name in ("schedutil", "powersave"):
        governor = make_governor(governor_name)
        result = run_trace(trace, governor, platform=platform)
        summary = result.summary
        print(f"--- {governor_name} ---")
        print(f"  average power        : {summary.average_power_w:6.2f} W")
        print(f"  peak big-CPU temp    : {summary.peak_temperature_c['big']:6.1f} C")
        print(f"  peak device temp     : {summary.peak_temperature_c['device']:6.1f} C")
        print(f"  average FPS          : {summary.average_fps:6.1f}")
        print(f"  frame delivery ratio : {summary.frame_delivery_ratio:6.2f}")
        print(f"  average PPDW         : {summary.average_ppdw:6.3f}")
        print()

    print(
        "powersave draws less power but drops interaction frames; the Next agent\n"
        "(see examples/gaming_session.py) finds the operating points that save\n"
        "power while still delivering the frame rate the user actually needs."
    )


if __name__ == "__main__":
    main()
