"""Scenario-matrix sweep: factorial governor comparison across apps and seeds.

Builds a pre-registered factorial design -- 3 governors x 3 apps x 2
replication seeds on the Exynos 9810 -- runs all 18 cells through the
process-pool sweep runner with an on-disk result cache, and prints the
replication-aware comparison tables.  Run it twice to see every cell served
from the cache.

Run with::

    python examples/scenario_sweep.py
"""

from repro.experiments import (
    ScenarioMatrix,
    SweepRunner,
    condition_table,
    marginal_table,
)


def main() -> None:
    matrix = ScenarioMatrix.build(
        name="example",
        governors=("schedutil", "powersave", "conservative"),
        apps=("facebook", "spotify", "youtube"),
        seeds=(0, 1),
        duration_s=20.0,
    )
    print(f"Running {len(matrix)} cells (2 replications per condition)...\n")

    runner = SweepRunner(max_workers=4, cache_dir=".sweep-cache")
    sweep = runner.run(
        matrix,
        progress=lambda done, total, result: print(
            f"  [{done:2d}/{total}] {result.status} {result.cell.label()}"
            + (" (cached)" if result.from_cache else "")
        ),
    )

    print()
    print(condition_table(sweep, metric="average_power_w"))
    print()
    print(marginal_table(sweep, axis="governor", baseline="schedutil"))
    print()
    print(marginal_table(sweep, axis="workload", baseline="schedutil"))
    print(
        f"\n{len(sweep.completed)}/{len(sweep)} cells ok, "
        f"{sweep.cached_count} from cache"
    )


if __name__ == "__main__":
    main()
