"""Daily-usage scenario: the paper's motivating mixed session (Figs. 1 and 3).

Recreates the home screen -> Facebook -> Spotify session of the paper's
motivation, prints the bursty FPS / frequency trace under ``schedutil``
(Fig. 1) and then compares power and temperature against a trained Next agent
(Fig. 3).

Run with::

    python examples/daily_usage_session.py
"""

from repro import make_governor
from repro.analysis.compare import percentage_saving
from repro.sim.experiment import record_session_trace, run_trace, select_best_next_governor
from repro.soc.platform import exynos9810
from repro.workloads.session import FIGURE1_SESSION


def main() -> None:
    platform = exynos9810()
    trace = record_session_trace(FIGURE1_SESSION.segments, platform=platform, seed=7)

    print("Replaying the session under stock schedutil (Fig. 1 view):\n")
    schedutil_result = run_trace(trace, make_governor("schedutil"), platform=platform)
    print(f"{'t (s)':>6} {'app':<10} {'fps':>6} {'big (GHz)':>10} {'LITTLE (GHz)':>13}")
    for sample in schedutil_result.recorder.resample(9.0):
        print(
            f"{sample.time_s:>6.0f} {sample.app_name:<10} {sample.fps:>6.1f} "
            f"{sample.frequencies_mhz['big'] / 1000:>10.2f} "
            f"{sample.frequencies_mhz['little'] / 1000:>13.2f}"
        )

    print("\nTraining the Next agent on the three session apps...")
    next_governor = select_best_next_governor(
        ["home", "facebook", "spotify"],
        platform=platform,
        candidate_seeds=(7,),
        episodes=12,
        episode_duration_s=75.0,
    )
    next_result = run_trace(trace, next_governor, platform=platform)

    sched, nxt = schedutil_result.summary, next_result.summary
    print("\nFig. 3 view -- schedutil vs Next on the identical session:")
    print(f"  avg power   : {sched.average_power_w:.2f} W -> {nxt.average_power_w:.2f} W "
          f"({percentage_saving(sched.average_power_w, nxt.average_power_w):.1f}% saving; paper 41.88%)")
    print(f"  avg big temp: {sched.average_temperature_c['big']:.1f} C -> "
          f"{nxt.average_temperature_c['big']:.1f} C "
          f"({percentage_saving(sched.average_temperature_c['big'], nxt.average_temperature_c['big']):.1f}% lower; paper 21.02%)")
    print(f"  peak big temp: {sched.peak_temperature_c['big']:.1f} C -> {nxt.peak_temperature_c['big']:.1f} C")
    print(f"  frame delivery: {sched.frame_delivery_ratio:.2f} -> {nxt.frame_delivery_ratio:.2f}")


if __name__ == "__main__":
    main()
