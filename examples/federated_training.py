"""Federated / cloud training scenario (Section IV-C of the paper).

Simulates a small fleet of devices that each train the Next agent locally on
the same application, aggregates their Q-tables on a "server" with the
visit-weighted FedAvg-style rule, and shows that (a) the aggregated table
controls the device at least as well as a typical individual device, and
(b) the cloud wall-clock model turns minutes of on-device training into
seconds plus the communication overhead.

Run with::

    python examples/federated_training.py
"""

from repro.core.federated import CloudTrainer, FederatedAggregator
from repro.core.governor import NextGovernor
from repro.sim.experiment import run_trace, train_next_governor
from repro.soc.platform import exynos9810
from repro.workloads.apps import make_app
from repro.workloads.trace import TraceRecorder

APP = "youtube"
FLEET_SIZE = 3


def main() -> None:
    platform = exynos9810()
    dt_s = 1.0 / platform.display_refresh_hz

    print(f"Training {FLEET_SIZE} simulated devices on {APP!r}...")
    device_governors = []
    device_training_times = []
    for device in range(FLEET_SIZE):
        governor = NextGovernor(seed=100 + device)
        result = train_next_governor(
            governor, APP, platform=platform, episodes=8, episode_duration_s=60.0,
            seed=100 + device, td_error_threshold=0.0,
        )
        governor.set_training(False)
        device_governors.append(governor)
        device_training_times.append(result.training_time_s)
        print(f"  device {device}: {result.agent_steps} steps, "
              f"{result.qtable_states} states, {result.training_time_s:.0f} s on-device")

    # Server-side aggregation of the per-device Q-tables.
    aggregator = FederatedAggregator(action_count=9)
    tables = [g.agent.store.table_for(APP) for g in device_governors]
    fleet_table = aggregator.aggregate(tables)
    print(f"\nAggregated fleet table: {len(fleet_table)} states "
          f"(union of {[len(t) for t in tables]}).")

    fleet_governor = NextGovernor(seed=999, training=False)
    fleet_governor.agent.store.set_table(APP, fleet_table)
    fleet_governor.agent.set_application(APP)

    # Evaluate an individual device and the fleet model on the same session.
    trace = TraceRecorder.record_app(make_app(APP, seed=555), 90.0, dt_s)
    individual = run_trace(trace, device_governors[0], platform=platform).summary
    fleet = run_trace(trace, fleet_governor, platform=platform).summary
    print(f"\nindividual device : {individual.average_power_w:.2f} W, "
          f"delivery {individual.frame_delivery_ratio:.2f}")
    print(f"fleet (federated) : {fleet.average_power_w:.2f} W, "
          f"delivery {fleet.frame_delivery_ratio:.2f}")

    # Cloud wall-clock model (Fig. 6's second series).
    cloud = CloudTrainer()
    mean_device_time = sum(device_training_times) / len(device_training_times)
    print(f"\nmean on-device training time : {mean_device_time:.0f} s")
    print(f"same training in the cloud   : {cloud.cloud_time_s(mean_device_time):.1f} s "
          f"(speed-up {cloud.speedup(mean_device_time):.1f}x incl. 4 s communication)")


if __name__ == "__main__":
    main()
